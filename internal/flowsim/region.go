package flowsim

import (
	"fmt"
	"math"
	"math/rand"

	"iris/internal/core"
	"iris/internal/hose"
	"iris/internal/traffic"
)

// RegionExperiment runs the §6.3 reconfiguration study on an actual
// planned deployment instead of the abstract pipe model: pipes are the
// region's DC pairs with capacities from the circuit allocation, the
// traffic matrix evolves under the change process, the controller's
// circuit diffs (core.Diff) define which pipes dim and by how much, and
// the same arrivals run against an EPS baseline without dips.
type RegionExperiment struct {
	Seed int64
	// Dep is the planned region.
	Dep *core.Deployment
	// Util is the network utilization target.
	Util float64
	// GbpsPerWavelength scales circuit capacity into simulated rate. The
	// real 400G per wavelength yields astronomically many flows; the
	// paper's slowdown metric is scale-free, so a smaller rate keeps the
	// simulation tractable without changing the ratio.
	GbpsPerWavelength float64
	// Dist is the flow-size workload.
	Dist traffic.SizeDist
	// ChangeIntervalS and ChangeBound drive the traffic change process
	// (bound ≤ 0 = unbounded).
	ChangeIntervalS float64
	ChangeBound     float64
	// ReconfigS is the fiber-switch time (70 ms measured).
	ReconfigS float64
	// DurationS is the simulated time.
	DurationS float64
}

// DefaultRegionExperiment returns the §6.3 operating point on a planned
// deployment.
func DefaultRegionExperiment(dep *core.Deployment, seed int64, util, intervalS, bound float64, dist traffic.SizeDist) RegionExperiment {
	return RegionExperiment{
		Seed: seed, Dep: dep, Util: util,
		GbpsPerWavelength: 0.25,
		Dist:              dist,
		ChangeIntervalS:   intervalS,
		ChangeBound:       bound,
		ReconfigS:         0.070,
		DurationS:         60,
	}
}

// Run executes the experiment and reports the FCT slowdowns.
func (e RegionExperiment) Run() (SlowdownReport, error) {
	if e.Dep == nil {
		return SlowdownReport{}, fmt.Errorf("flowsim: nil deployment")
	}
	if e.ChangeIntervalS <= 0 || e.GbpsPerWavelength <= 0 {
		return SlowdownReport{}, fmt.Errorf("flowsim: invalid region experiment %+v", e)
	}
	dcs := e.Dep.Region.Map.DCs()
	lambda := e.Dep.Region.Lambda
	caps := make(map[int]float64, len(dcs))
	for _, dc := range dcs {
		caps[dc] = float64(e.Dep.Region.Capacity[dc] * lambda) // wavelengths
	}
	rng := rand.New(rand.NewSource(e.Seed))
	m := traffic.HeavyTailed(rng, dcs, caps, e.Util)
	integerize(m)
	alloc, err := e.Dep.Allocate(m)
	if err != nil {
		return SlowdownReport{}, fmt.Errorf("flowsim: initial allocation: %w", err)
	}

	// Pipes: capacity = the pair's allocated circuit (full fibers plus
	// residual wavelengths); offered load = the pair's matrix demand.
	pairs := m.Pairs()
	pipeIdx := make(map[hose.Pair]int, len(pairs))
	var pipes []Pipe
	for _, p := range pairs {
		wl := float64(alloc.FibersFor(p)*lambda + alloc.ResidualFor(p))
		demand := m.Get(p)
		if wl == 0 {
			continue
		}
		// The matrix entry is the circuit's provisioned peak; actual
		// offered load is the utilization fraction of it (§6.3 assumes
		// provisioning covers the traffic before and after each change).
		util := e.Util * demand / wl
		if util >= 0.95 {
			util = 0.95 // stability margin
		}
		pipeIdx[p.Canonical()] = len(pipes)
		pipes = append(pipes, Pipe{
			CapacityGbps: wl * e.GbpsPerWavelength,
			UtilFrac:     util,
		})
	}
	if len(pipes) == 0 {
		return SlowdownReport{}, fmt.Errorf("flowsim: degenerate region matrix")
	}

	// Evolve the matrix; every fiber move dims its pipe for the switch.
	cp := traffic.ChangeProcess{Bound: e.ChangeBound, Caps: caps, Util: e.Util}
	dips := make(map[int][]Dip)
	nDips := 0
	cur := alloc
	for t := e.ChangeIntervalS; t < e.DurationS; t += e.ChangeIntervalS {
		cp.Step(rng, m)
		integerize(m)
		next, err := e.Dep.Allocate(m)
		if err != nil {
			return SlowdownReport{}, fmt.Errorf("flowsim: allocation at t=%.0fs: %w", t, err)
		}
		for _, mv := range core.Diff(cur, next) {
			idx, ok := pipeIdx[mv.Pair]
			if !ok {
				continue // pair had no pipe at t=0 (zero initial demand)
			}
			dips[idx] = append(dips[idx], Dip{
				TimeS: t, DurationS: e.ReconfigS, FracLost: mv.FracAffected,
			})
			nDips++
		}
		cur = next
	}

	warmup := e.DurationS / 10
	iris, err := Run(Config{
		Seed: e.Seed, DurationS: e.DurationS, WarmupS: warmup,
		Dist: e.Dist, Pipes: pipes, Dips: dips,
	})
	if err != nil {
		return SlowdownReport{}, err
	}
	eps, err := Run(Config{
		Seed: e.Seed, DurationS: e.DurationS, WarmupS: warmup,
		Dist: e.Dist, Pipes: pipes,
	})
	if err != nil {
		return SlowdownReport{}, err
	}
	return SlowdownReport{
		All:       ratio99(iris.FCTs(false), eps.FCTs(false)),
		Short:     ratio99(iris.FCTs(true), eps.FCTs(true)),
		IrisFlows: len(iris.Flows),
		EPSFlows:  len(eps.Flows),
		Reconfigs: nDips,
	}, nil
}

// integerize snaps every pair demand to whole wavelengths. Rounding (not
// truncating) matters: float noise like 3.9999997 must stay 4, or a
// constant matrix would fabricate a one-wavelength demand change — and a
// phantom reconfiguration — per pair per step.
func integerize(m *traffic.Matrix) {
	for _, p := range m.Pairs() {
		m.Set(p, math.Round(m.Get(p)))
	}
}
