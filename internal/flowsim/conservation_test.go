package flowsim

import (
	"math/rand"
	"testing"

	"iris/internal/traffic"
)

// TestThroughputNeverExceedsCapacity: in any window, the bytes delivered
// by a pipe cannot exceed its capacity × time (with dips, the dipped
// capacity × time). We check the aggregate over the whole run.
func TestThroughputNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		capGbps := 1 + rng.Float64()*9
		util := 0.1 + rng.Float64()*0.8
		duration := 5 + rng.Float64()*10
		cfg := Config{
			Seed: int64(trial), DurationS: duration, Dist: traffic.FBWeb(),
			Pipes: []Pipe{{CapacityGbps: capGbps, UtilFrac: util}},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var served float64
		for _, f := range res.Flows {
			served += f.SizeBytes
		}
		budget := capGbps * 1e9 / 8 * duration
		if served > budget {
			t.Fatalf("trial %d: served %.0f bytes > capacity budget %.0f", trial, served, budget)
		}
	}
}

// TestOfferedLoadIsMet: at moderate utilization the simulator should
// complete nearly all offered volume (the pipe is stable), so served bytes
// approach util × capacity × time.
func TestOfferedLoadIsMet(t *testing.T) {
	const (
		capGbps  = 5.0
		util     = 0.5
		duration = 30.0
	)
	cfg := Config{
		Seed: 3, DurationS: duration, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: capGbps, UtilFrac: util}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var served float64
	for _, f := range res.Flows {
		served += f.SizeBytes
	}
	offered := util * capGbps * 1e9 / 8 * duration
	ratio := served / offered
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("served/offered = %.3f, want ≈1 (stable M/G/1-PS)", ratio)
	}
	if res.Incomplete > len(res.Flows)/10 {
		t.Errorf("%d incomplete flows vs %d complete; pipe should be stable",
			res.Incomplete, len(res.Flows))
	}
}

// TestFCTsConsistentUnderDipsAcrossSeeds: with identical arrivals, adding
// dips can only delay each flow, never speed it up. Because the Config
// seed fully determines arrivals, we can compare flow-by-flow.
func TestFCTsConsistentUnderDipsAcrossSeeds(t *testing.T) {
	base := Config{
		Seed: 5, DurationS: 15, Dist: traffic.WebSearch(),
		Pipes: []Pipe{{CapacityGbps: 2, UtilFrac: 0.5}},
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	dipped := base
	dipped.Dips = map[int][]Dip{0: {
		{TimeS: 3, DurationS: 0.5, FracLost: 0.8},
		{TimeS: 9, DurationS: 0.5, FracLost: 0.8},
	}}
	hit, err := Run(dipped)
	if err != nil {
		t.Fatal(err)
	}
	// Index clean flows by (arrival, size) — unique with a continuous RNG.
	type key struct{ a, s float64 }
	cleanFCT := make(map[key]float64, len(clean.Flows))
	for _, f := range clean.Flows {
		cleanFCT[key{f.ArriveS, f.SizeBytes}] = f.FCTSec
	}
	matched := 0
	for _, f := range hit.Flows {
		if c, ok := cleanFCT[key{f.ArriveS, f.SizeBytes}]; ok {
			matched++
			if f.FCTSec < c-1e-9 {
				t.Fatalf("flow at %v finished faster with dips: %v < %v", f.ArriveS, f.FCTSec, c)
			}
		}
	}
	if matched < len(hit.Flows)*9/10 {
		t.Fatalf("only matched %d/%d flows", matched, len(hit.Flows))
	}
}
