package flowsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"iris/internal/parallel"
	"iris/internal/traffic"
)

// This file is the user-scale load engine: the same fluid
// processor-sharing model as the exact per-pipe simulator, restructured
// so a region can carry millions of concurrent flows. The active set is
// a two-level credit calendar — an unsorted ring of coarse credit
// buckets with only the head bucket expanded into an exact min-heap — so
// an arrival is O(1), a capacity change is O(1), and a departure touches
// the small head heap instead of a million-entry one. With a flat
// arrival shape the engine consumes the per-pipe RNG stream in exactly
// the order the exact simulator does and replays the same event
// sequence, which is what lets the validation tests compare the two
// flow-for-flow.

// LoadConfig drives one user-scale load run.
type LoadConfig struct {
	Seed      int64
	DurationS float64
	// WarmupS excludes flows arriving before this time from the sketches.
	WarmupS float64
	Dist    traffic.SizeDist
	Pipes   []Pipe
	// Dips maps pipe index to its reconfiguration events, as in Config.
	Dips map[int][]Dip
	// Shape optionally modulates arrivals (diurnal swing, flash crowds)
	// via thinning of a homogeneous Poisson envelope. Nil or flat keeps
	// arrivals identical to the exact simulator's.
	Shape *traffic.Shape
	// Workers bounds the parallel per-pipe simulations; <=0 uses
	// GOMAXPROCS. Results are deterministic regardless of worker count.
	Workers int
	// BucketCredit is the calendar bucket width in credit bytes; <=0
	// picks maxFlowSize/64, keeping the ring at ~66 buckets.
	BucketCredit float64
}

// LoadStats aggregates one run. FCT quantiles come from streaming
// sketches rather than per-flow records, so memory is flat in the flow
// count.
type LoadStats struct {
	// Flows and ShortFlows count completed post-warmup flows (short =
	// under traffic.ShortFlowBytes).
	Flows      uint64
	ShortFlows uint64
	// Incomplete counts flows still active when the run ended.
	Incomplete uint64
	// BytesCompleted sums the sizes of counted flows.
	BytesCompleted float64
	// BytesStranded integrates capacity removed by dips while flows were
	// waiting: for each interval, capacity × fraction-lost × time, summed
	// only while the pipe had active flows. It is the demand the drain
	// actually displaced, not just the capacity withdrawn.
	BytesStranded float64
	// PeakConcurrent sums each pipe's peak active-flow count. Pipes are
	// independent, so this is the region's peak when dips align (a
	// region-wide outage) and an upper bound otherwise.
	PeakConcurrent uint64
	// FCT and ShortFCT are the completion-time sketches.
	FCT      *Sketch
	ShortFCT *Sketch
}

// RunLoad simulates all pipes in parallel and merges their statistics in
// pipe order, so the result is independent of scheduling.
func RunLoad(cfg LoadConfig) (LoadStats, error) {
	if cfg.DurationS <= 0 {
		return LoadStats{}, fmt.Errorf("flowsim: duration must be positive")
	}
	if len(cfg.Pipes) == 0 {
		return LoadStats{}, fmt.Errorf("flowsim: no pipes")
	}
	mean := cfg.Dist.Mean()
	if mean <= 0 || math.IsNaN(mean) {
		return LoadStats{}, fmt.Errorf("flowsim: workload has invalid mean %v", mean)
	}
	for i, p := range cfg.Pipes {
		if p.CapacityGbps <= 0 {
			return LoadStats{}, fmt.Errorf("flowsim: pipe %d has capacity %v", i, p.CapacityGbps)
		}
		if p.UtilFrac < 0 || p.UtilFrac >= 1 {
			return LoadStats{}, fmt.Errorf("flowsim: pipe %d utilization %v outside [0,1)", i, p.UtilFrac)
		}
	}
	width := cfg.BucketCredit
	if width <= 0 {
		width = cfg.Dist.Max() / 64
	}

	per := make([]LoadStats, len(cfg.Pipes))
	err := parallel.ForEach(len(cfg.Pipes), cfg.Workers, func(i int) error {
		// The same per-pipe stream as the exact simulator.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		per[i] = loadPipe(rng, cfg.Pipes[i], cfg.Dips[i], cfg.Dist, mean, width,
			cfg.DurationS, cfg.WarmupS, cfg.Shape)
		return nil
	})
	if err != nil {
		return LoadStats{}, err
	}

	out := LoadStats{FCT: NewSketch(), ShortFCT: NewSketch()}
	for i := range per {
		out.Flows += per[i].Flows
		out.ShortFlows += per[i].ShortFlows
		out.Incomplete += per[i].Incomplete
		out.BytesCompleted += per[i].BytesCompleted
		out.BytesStranded += per[i].BytesStranded
		out.PeakConcurrent += per[i].PeakConcurrent
		out.FCT.Merge(per[i].FCT)
		out.ShortFCT.Merge(per[i].ShortFCT)
	}
	return out, nil
}

// creditCalendar holds a pipe's active flows keyed by the credit value
// at which each completes. Absolute bucket number = doneAtCredit/width;
// buckets at or below headAbs live in an exact min-heap, later buckets
// in unsorted ring slots. Because every live flow's completion credit is
// within one maximum flow size of the current credit, the ring stays
// small and never wraps onto itself.
type creditCalendar struct {
	width   float64
	ring    [][]activeFlow
	headAbs int64 // highest absolute bucket covered by the heap
	heap    flowHeap
	count   int
}

func newCreditCalendar(width, maxSize float64) *creditCalendar {
	slots := int(maxSize/width) + 3
	return &creditCalendar{width: width, ring: make([][]activeFlow, slots)}
}

func (c *creditCalendar) push(f activeFlow) {
	b := int64(f.doneAtCredit / c.width)
	if b <= c.headAbs {
		heap.Push(&c.heap, f)
	} else {
		slot := int(b % int64(len(c.ring)))
		c.ring[slot] = append(c.ring[slot], f)
	}
	c.count++
}

// minDone returns the smallest completion credit, expanding ring buckets
// into the head heap as needed. Each flow is heapified exactly once, so
// the amortized cost per flow is O(log headBucketSize).
func (c *creditCalendar) minDone() (float64, bool) {
	if c.count == 0 {
		return 0, false
	}
	for len(c.heap) == 0 {
		c.headAbs++
		slot := int(c.headAbs % int64(len(c.ring)))
		if len(c.ring[slot]) > 0 {
			c.heap = append(c.heap, c.ring[slot]...)
			c.ring[slot] = c.ring[slot][:0]
			heap.Init(&c.heap)
		}
	}
	return c.heap[0].doneAtCredit, true
}

func (c *creditCalendar) pop() activeFlow {
	c.count--
	return heap.Pop(&c.heap).(activeFlow)
}

// loadPipe is the engine's per-pipe event loop: the credit method of
// simulatePipe, with the heap swapped for the calendar and streaming
// statistics in place of per-flow records.
func loadPipe(rng *rand.Rand, p Pipe, dips []Dip, dist traffic.SizeDist,
	meanBytes, width, durationS, warmupS float64, shape *traffic.Shape) LoadStats {

	capBytesPerS := p.CapacityGbps * 1e9 / 8
	lambda := p.UtilFrac * capBytesPerS / meanBytes

	// Shaped arrivals are a thinned homogeneous process at the envelope
	// rate lambda*MaxMult: each candidate is accepted with probability
	// Mult(t)/MaxMult. With no shape the envelope is lambda itself and no
	// acceptance draw is made, so the RNG stream — arrival gap, then flow
	// size, repeated — matches the exact simulator's draw for draw.
	maxMult := 1.0
	if shape != nil {
		maxMult = shape.MaxMult()
	}
	lambdaMax := lambda * maxMult

	timeline := newCapTimeline(dips)
	cal := newCreditCalendar(width, dist.Max())
	st := LoadStats{FCT: NewSketch(), ShortFCT: NewSketch()}
	credit := 0.0

	t := 0.0
	nextArrival := math.Inf(1)
	if lambdaMax > 0 {
		nextArrival = rng.ExpFloat64() / lambdaMax
	}

	currentCap := func() float64 { return capBytesPerS * timeline.mult }

	for t < durationS {
		nextDeparture := math.Inf(1)
		if cal.count > 0 && currentCap() > 0 {
			done, _ := cal.minDone()
			perFlow := currentCap() / float64(cal.count)
			nextDeparture = t + (done-credit)/perFlow
		}
		nextChange := timeline.next()
		next := math.Min(math.Min(nextArrival, nextChange), math.Min(nextDeparture, durationS))

		if cal.count > 0 {
			if currentCap() > 0 {
				credit += currentCap() / float64(cal.count) * (next - t)
			}
			st.BytesStranded += capBytesPerS * (1 - timeline.mult) * (next - t)
		}
		t = next
		switch {
		case t == nextDeparture && cal.count > 0:
			f := cal.pop()
			if f.arriveS >= warmupS {
				fct := t - f.arriveS
				st.Flows++
				st.BytesCompleted += f.sizeBytes
				st.FCT.Observe(fct)
				if f.sizeBytes < traffic.ShortFlowBytes {
					st.ShortFlows++
					st.ShortFCT.Observe(fct)
				}
			}
		case t == nextArrival:
			accept := true
			if maxMult != 1 {
				accept = rng.Float64()*maxMult <= shape.Mult(t)
			}
			if accept {
				size := dist.Sample(rng)
				cal.push(activeFlow{doneAtCredit: credit + size, sizeBytes: size, arriveS: t})
				if n := uint64(cal.count); n > st.PeakConcurrent {
					st.PeakConcurrent = n
				}
			}
			nextArrival = t + rng.ExpFloat64()/lambdaMax
		case t == nextChange:
			timeline.apply()
		}
	}
	st.Incomplete = uint64(cal.count)
	return st
}
