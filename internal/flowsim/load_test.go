package flowsim

import (
	"math"
	"testing"

	"iris/internal/stats"
	"iris/internal/traffic"
)

func loadTestConfig() Config {
	return Config{
		Seed: 23, DurationS: 20, WarmupS: 2,
		Dist: traffic.FBWeb(),
		Pipes: []Pipe{
			{CapacityGbps: 0.5, UtilFrac: 0.7},
			{CapacityGbps: 1.0, UtilFrac: 0.5},
			{CapacityGbps: 0.25, UtilFrac: 0.85},
		},
		Dips: map[int][]Dip{
			0: {{TimeS: 4, DurationS: 3, FracLost: 0.5}, {TimeS: 5, DurationS: 3, FracLost: 0.9}},
			1: {{TimeS: 8, DurationS: 1, FracLost: 1}},
			2: {{TimeS: 3, DurationS: 0.07, FracLost: 0.25}, {TimeS: 9, DurationS: 0.07, FracLost: 0.5}},
		},
	}
}

func runLoadFromExact(t *testing.T, cfg Config, mutate func(*LoadConfig)) LoadStats {
	t.Helper()
	lc := LoadConfig{
		Seed: cfg.Seed, DurationS: cfg.DurationS, WarmupS: cfg.WarmupS,
		Dist: cfg.Dist, Pipes: cfg.Pipes, Dips: cfg.Dips,
	}
	if mutate != nil {
		mutate(&lc)
	}
	st, err := RunLoad(lc)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLoadEngineMatchesExactSimulator is the engine's ground truth: with
// a flat arrival shape it consumes the same RNG stream and replays the
// same event sequence as the exact per-pipe simulator, so flow counts
// must match exactly and the sketch quantiles must sit within the
// sketch's ~1% bucket resolution of the exact empirical quantiles.
func TestLoadEngineMatchesExactSimulator(t *testing.T) {
	cfg := loadTestConfig()
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := runLoadFromExact(t, cfg, nil)

	if got, want := st.Flows, uint64(len(exact.Flows)); got != want {
		t.Fatalf("engine completed %d flows, exact simulator %d", got, want)
	}
	if got, want := st.Incomplete, uint64(exact.Incomplete); got != want {
		t.Fatalf("engine left %d incomplete, exact simulator %d", got, want)
	}
	var bytes float64
	for _, f := range exact.Flows {
		bytes += f.SizeBytes
	}
	if math.Abs(st.BytesCompleted-bytes) > 1e-6*bytes {
		t.Errorf("bytes completed %v vs exact %v", st.BytesCompleted, bytes)
	}
	for _, q := range []float64{50, 90, 99, 99.9} {
		want := stats.Percentile(exact.FCTs(false), q)
		got := st.FCT.Quantile(q / 100)
		if math.Abs(got-want) > 0.025*want {
			t.Errorf("p%v FCT: sketch %v vs exact %v", q, got, want)
		}
	}
	wantShort := stats.Percentile(exact.FCTs(true), 99)
	if got := st.ShortFCT.Quantile(0.99); math.Abs(got-wantShort) > 0.025*wantShort {
		t.Errorf("short-flow p99: sketch %v vs exact %v", got, wantShort)
	}
}

// The event sequence is independent of the calendar bucket width and of
// the worker count — both are pure performance knobs.
func TestLoadEngineInvariantToBucketWidthAndWorkers(t *testing.T) {
	cfg := loadTestConfig()
	base := runLoadFromExact(t, cfg, nil)
	variants := map[string]func(*LoadConfig){
		"coarse buckets": func(lc *LoadConfig) { lc.BucketCredit = cfg.Dist.Max() / 4 },
		"fine buckets":   func(lc *LoadConfig) { lc.BucketCredit = cfg.Dist.Max() / 512 },
		"one worker":     func(lc *LoadConfig) { lc.Workers = 1 },
		"many workers":   func(lc *LoadConfig) { lc.Workers = 8 },
	}
	for name, mut := range variants {
		got := runLoadFromExact(t, cfg, mut)
		if got.Flows != base.Flows || got.Incomplete != base.Incomplete {
			t.Errorf("%s: counts %d/%d differ from base %d/%d",
				name, got.Flows, got.Incomplete, base.Flows, base.Incomplete)
		}
		if got.FCT.Quantile(0.99) != base.FCT.Quantile(0.99) {
			t.Errorf("%s: p99 %v differs from base %v", name, got.FCT.Quantile(0.99), base.FCT.Quantile(0.99))
		}
		if got.BytesStranded != base.BytesStranded {
			t.Errorf("%s: stranded %v differs from base %v", name, got.BytesStranded, base.BytesStranded)
		}
	}
}

// A full outage accumulates a backlog of lambda×duration flows and
// strands capacity×duration bytes; both must show up in the stats.
func TestLoadEngineFullOutageBacklogAndStranding(t *testing.T) {
	pipe := Pipe{CapacityGbps: 1, UtilFrac: 0.5}
	outageS := 2.0
	st, err := RunLoad(LoadConfig{
		Seed: 9, DurationS: 12, WarmupS: 1,
		Dist:  traffic.FBWeb(),
		Pipes: []Pipe{pipe},
		Dips:  map[int][]Dip{0: {{TimeS: 5, DurationS: outageS, FracLost: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := pipe.CapacityGbps * 1e9 / 8
	lambda := pipe.UtilFrac * capBytes / traffic.FBWeb().Mean()
	backlog := lambda * outageS
	if float64(st.PeakConcurrent) < 0.8*backlog {
		t.Errorf("peak concurrency %d under 80%% of expected outage backlog %.0f",
			st.PeakConcurrent, backlog)
	}
	wantStranded := capBytes * outageS
	if math.Abs(st.BytesStranded-wantStranded) > 0.02*wantStranded {
		t.Errorf("stranded %v bytes, want ~%v (capacity×outage)", st.BytesStranded, wantStranded)
	}
	if st.Flows == 0 || st.FCT.Quantile(0.999) <= st.FCT.Quantile(0.5) {
		t.Errorf("degenerate FCT sketch: n=%d p50=%v p999=%v",
			st.Flows, st.FCT.Quantile(0.5), st.FCT.Quantile(0.999))
	}
}

// Shaped arrivals: a diurnal swing over whole periods preserves the mean
// rate (thinning is unbiased), and a flash crowd adds flows.
func TestLoadEngineShapedArrivals(t *testing.T) {
	cfg := LoadConfig{
		Seed: 31, DurationS: 40, WarmupS: 0,
		Dist:  traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 0.5, UtilFrac: 0.6}},
	}
	flat, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}

	diurnal, err := traffic.NewShape(1, traffic.LoadProfile{DiurnalAmp: 0.5, DiurnalPeriodS: 10}, cfg.DurationS)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shape = diurnal
	shaped, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(flat.Flows + flat.Incomplete)
	gotTotal := float64(shaped.Flows + shaped.Incomplete)
	if math.Abs(gotTotal-total) > 0.1*total {
		t.Errorf("diurnal shaping changed mean arrivals: %v vs flat %v", gotTotal, total)
	}

	flash, err := traffic.NewShape(2, traffic.LoadProfile{FlashEveryS: 10, FlashDurationS: 4, FlashMult: 1.6}, cfg.DurationS)
	if err != nil {
		t.Fatal(err)
	}
	if flash.Flashes() == 0 {
		t.Fatal("no flash windows drawn")
	}
	cfg.Shape = flash
	crowded, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(crowded.Flows+crowded.Incomplete) <= 1.05*total {
		t.Errorf("flash crowds added no load: %d flows vs flat %v", crowded.Flows+crowded.Incomplete, total)
	}
}

func TestLoadEngineValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Error("expected error for empty config")
	}
	if _, err := RunLoad(LoadConfig{DurationS: 1, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 1.5}}}); err == nil {
		t.Error("expected error for utilization >= 1")
	}
}

func TestSketchQuantiles(t *testing.T) {
	s := NewSketch()
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Mean() != 0 {
		t.Error("empty sketch not zero-valued")
	}
	// 1..10000 ms: every quantile is known analytically.
	var xs []float64
	for i := 1; i <= 10000; i++ {
		x := float64(i) * 1e-3
		s.Observe(x)
		xs = append(xs, x)
	}
	for _, q := range []float64{1, 25, 50, 90, 99, 99.9} {
		want := stats.Percentile(xs, q)
		got := s.Quantile(q / 100)
		if math.Abs(got-want) > 0.02*want+1e-3 {
			t.Errorf("p%v = %v, want %v", q, got, want)
		}
	}
	if got, want := s.Mean(), stats.Mean(xs); math.Abs(got-want) > 1e-9*want {
		t.Errorf("mean = %v, want %v (tracked exactly)", got, want)
	}
	// Merge of halves equals the whole.
	a, b := NewSketch(), NewSketch()
	for i, x := range xs {
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.Count() != s.Count() || a.Quantile(0.99) != s.Quantile(0.99) {
		t.Error("merged sketch differs from single sketch")
	}
}
