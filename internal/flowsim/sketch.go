package flowsim

import "math"

// Sketch is a streaming log-bucketed histogram for flow-completion-time
// quantiles: the load engine pushes millions of FCTs through it without
// storing per-flow records. Buckets grow geometrically by sketchGamma,
// bounding the relative error of any reported quantile by ~1% — far
// inside the tolerance of the paper's slowdown comparisons.
type Sketch struct {
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// The sketch spans [sketchMin, sketchMin·gamma^buckets) seconds; values
// outside clamp into the edge buckets. 1e-7 s to ~1e7 s covers every FCT
// a region simulation can produce.
const (
	sketchMin     = 1e-7
	sketchGamma   = 1.02
	sketchBuckets = 1640
)

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{
		counts: make([]uint64, sketchBuckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func sketchIndex(x float64) int {
	if x <= sketchMin {
		return 0
	}
	i := int(math.Log(x/sketchMin) / math.Log(sketchGamma))
	if i >= sketchBuckets {
		return sketchBuckets - 1
	}
	return i
}

// Observe adds one value.
func (s *Sketch) Observe(x float64) {
	s.counts[sketchIndex(x)]++
	s.n++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Merge folds another sketch into this one.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.n }

// Mean returns the exact mean of all observations (the sum is tracked
// outside the buckets), or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile returns the q-th quantile (q in [0,1]) as the geometric
// midpoint of the bucket holding that rank, clamped to the observed
// min/max so extreme quantiles never overshoot the data. Returns 0 for
// an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := sketchMin * math.Pow(sketchGamma, float64(i)+0.5)
			return math.Min(math.Max(v, s.min), s.max)
		}
	}
	return s.max
}
