package wave

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPackDCBasics(t *testing.T) {
	fibers, err := PackDC([]Demand{
		{Dst: 2, Wavelengths: 100}, // 2 full + 20 residual at λ=40
		{Dst: 1, Wavelengths: 40},  // exactly 1 full
		{Dst: 3, Wavelengths: 0},   // nothing
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(fibers) != 4 {
		t.Fatalf("fibers = %d, want 4", len(fibers))
	}
	// Destination order: dst 1 first.
	if fibers[0].Dst != 1 || fibers[0].Live() != 40 {
		t.Errorf("fiber[0] = %+v", fibers[0])
	}
	if fibers[1].Dst != 2 || fibers[1].Live() != 40 {
		t.Errorf("fiber[1] = %+v", fibers[1])
	}
	if fibers[3].Dst != 2 || fibers[3].Live() != 20 {
		t.Errorf("fiber[3] = %+v (residual)", fibers[3])
	}
}

func TestPackDCErrors(t *testing.T) {
	if _, err := PackDC(nil, 0); err == nil {
		t.Error("expected error for bad lambda")
	}
	if _, err := PackDC([]Demand{{Dst: 1, Wavelengths: -1}}, 40); err == nil {
		t.Error("expected error for negative demand")
	}
	if _, err := PackDC([]Demand{{Dst: 1, Wavelengths: 1}, {Dst: 1, Wavelengths: 2}}, 40); err == nil {
		t.Error("expected error for duplicate destination")
	}
}

func TestPackDCConservesWavelengths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		lambda := 1 + rng.Intn(64)
		var demands []Demand
		want := 0
		for d := 0; d < 1+rng.Intn(8); d++ {
			w := rng.Intn(3 * lambda)
			demands = append(demands, Demand{Dst: d, Wavelengths: w})
			want += w
		}
		fibers, err := PackDC(demands, lambda)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, f := range fibers {
			if f.Live() > lambda {
				t.Fatalf("fiber overfilled: %d > λ=%d", f.Live(), lambda)
			}
			got += f.Live()
		}
		if got != want {
			t.Fatalf("trial %d: packed %d wavelengths, want %d", trial, got, want)
		}
	}
}

func TestASEFillComplement(t *testing.T) {
	f := Fiber{Dst: 1, Slots: []int{0, 1, 2}}
	fill := ASEFill(f, 6)
	if !reflect.DeepEqual(fill, []int{3, 4, 5}) {
		t.Errorf("fill = %v", fill)
	}
	full := Fiber{Dst: 1, Slots: allSlots(6)}
	if got := ASEFill(full, 6); got != nil {
		t.Errorf("full fiber fill = %v, want none", got)
	}
}

func TestFiberCountMatchesSection43(t *testing.T) {
	// A DC with capacity z fibers sending x+y=z where y is fractional
	// needs z+1 fibers (§4.3's motivating example).
	const lambda = 40
	n, err := FiberCount([]Demand{
		{Dst: 1, Wavelengths: 70}, // 1 full + residual
		{Dst: 2, Wavelengths: 10}, // residual only
	}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // demand totals 2 fibers' worth but needs 3
		t.Errorf("FiberCount = %d, want 3", n)
	}
}

func TestColorLightpathsSimple(t *testing.T) {
	paths := []Lightpath{
		{ID: 0, Links: []int{1, 2}},
		{ID: 1, Links: []int{2, 3}},
		{ID: 2, Links: []int{3, 4}},
	}
	colors, used := ColorLightpaths(paths)
	if !ValidColoring(paths, colors) {
		t.Fatalf("invalid coloring %v", colors)
	}
	// Paths 0 and 2 are disjoint: two wavelengths suffice.
	if used != 2 {
		t.Errorf("used %d wavelengths, want 2", used)
	}
}

func TestColorLightpathsDisjointSharesColors(t *testing.T) {
	paths := []Lightpath{
		{ID: 0, Links: []int{1}},
		{ID: 1, Links: []int{2}},
		{ID: 2, Links: []int{3}},
	}
	_, used := ColorLightpaths(paths)
	if used != 1 {
		t.Errorf("used %d wavelengths for disjoint paths, want 1", used)
	}
}

func TestColorLightpathsEmpty(t *testing.T) {
	colors, used := ColorLightpaths(nil)
	if colors != nil || used != 0 {
		t.Errorf("empty input: %v, %d", colors, used)
	}
}

func TestColorLightpathsRandomValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var paths []Lightpath
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var links []int
			for l := 0; l < 1+rng.Intn(5); l++ {
				links = append(links, rng.Intn(12))
			}
			paths = append(paths, Lightpath{ID: i, Links: links})
		}
		colors, used := ColorLightpaths(paths)
		if !ValidColoring(paths, colors) {
			t.Fatalf("trial %d: invalid coloring", trial)
		}
		lower := MinLoadLowerBound(paths)
		if used < lower {
			t.Fatalf("trial %d: used %d below link-load lower bound %d", trial, used, lower)
		}
		// Greedy coloring never needs more than maxdegree+1 colors, and
		// degree < n, so this is a sanity ceiling.
		if used > n {
			t.Fatalf("trial %d: used %d colors for %d paths", trial, used, n)
		}
	}
}

func TestValidColoringDetectsConflicts(t *testing.T) {
	paths := []Lightpath{
		{ID: 0, Links: []int{1}},
		{ID: 1, Links: []int{1}},
	}
	if ValidColoring(paths, []int{0, 0}) {
		t.Error("conflicting colors accepted")
	}
	if ValidColoring(paths, []int{0}) {
		t.Error("short assignment accepted")
	}
	if ValidColoring(paths, []int{0, -1}) {
		t.Error("unassigned path accepted")
	}
	if !ValidColoring(paths, []int{0, 1}) {
		t.Error("valid coloring rejected")
	}
}

func TestMinLoadLowerBound(t *testing.T) {
	paths := []Lightpath{
		{ID: 0, Links: []int{1, 1, 2}}, // duplicate links count once
		{ID: 1, Links: []int{1}},
		{ID: 2, Links: []int{2}},
	}
	if got := MinLoadLowerBound(paths); got != 2 {
		t.Errorf("lower bound = %d, want 2", got)
	}
	if got := MinLoadLowerBound(nil); got != 0 {
		t.Errorf("empty lower bound = %d", got)
	}
}
