package wave_test

import (
	"fmt"

	"iris/internal/wave"
)

// ExamplePackDC shows the §4.3 fiber accounting: a DC whose demands sum to
// exactly two fibers' worth still needs three fibers, because the second
// destination's fraction cannot share the first destination's fiber.
func ExamplePackDC() {
	fibers, err := wave.PackDC([]wave.Demand{
		{Dst: 1, Wavelengths: 70},
		{Dst: 2, Wavelengths: 10},
	}, 40)
	if err != nil {
		panic(err)
	}
	for _, f := range fibers {
		fmt.Printf("fiber to DC%d: %d live, %d ASE-filled\n",
			f.Dst, f.Live(), len(wave.ASEFill(f, 40)))
	}
	// Output:
	// fiber to DC1: 40 live, 0 ASE-filled
	// fiber to DC1: 30 live, 10 ASE-filled
	// fiber to DC2: 10 live, 30 ASE-filled
}
