// Package wave implements Iris's wavelength management. Iris deliberately
// keeps this trivial (§5.1–5.2): each DC independently packs its tunable
// transceivers into outgoing fibers, with amplified-spontaneous-emission
// (ASE) noise filling unused slots so amplifier gain profiles stay flat.
// No network-wide coordination is needed because fibers — not wavelengths
// — are the switching unit.
//
// The package also provides the wavelength-assignment machinery a pure
// wavelength-switched design would need instead: coloring the circuit
// conflict graph so that circuits sharing a fiber link never collide —
// exactly the extra complexity Appendix B cites as a reason to prefer
// fiber switching.
package wave

import (
	"fmt"
	"sort"
)

// Demand is one destination's wavelength requirement from a source DC.
type Demand struct {
	Dst         int
	Wavelengths int
}

// Fiber is one outgoing fiber's packing: the destination its circuit
// points at and the wavelength slots carrying live traffic. Slots not
// listed are ASE-filled.
type Fiber struct {
	Dst   int
	Slots []int
}

// Live returns the number of live wavelengths on the fiber.
func (f Fiber) Live() int { return len(f.Slots) }

// PackDC packs a DC's demands into outgoing fibers of lambda wavelength
// slots each: ⌊d/λ⌋ full fibers per destination plus one residual fiber
// carrying the remainder (§4.3). Full fibers use every slot; residual
// fibers use the lowest slots, leaving the rest for ASE fill. Demands are
// processed in destination order so the packing is deterministic.
func PackDC(demands []Demand, lambda int) ([]Fiber, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("wave: lambda must be positive, got %d", lambda)
	}
	sorted := append([]Demand(nil), demands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dst < sorted[j].Dst })

	var fibers []Fiber
	seen := make(map[int]bool, len(sorted))
	for _, d := range sorted {
		if d.Wavelengths < 0 {
			return nil, fmt.Errorf("wave: negative demand %d for destination %d", d.Wavelengths, d.Dst)
		}
		if seen[d.Dst] {
			return nil, fmt.Errorf("wave: duplicate destination %d", d.Dst)
		}
		seen[d.Dst] = true
		full := d.Wavelengths / lambda
		for i := 0; i < full; i++ {
			fibers = append(fibers, Fiber{Dst: d.Dst, Slots: allSlots(lambda)})
		}
		if rem := d.Wavelengths % lambda; rem > 0 {
			fibers = append(fibers, Fiber{Dst: d.Dst, Slots: allSlots(rem)})
		}
	}
	return fibers, nil
}

func allSlots(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// ASEFill returns the slots of a fiber that must carry ASE noise: the
// complement of the live slots in [0, lambda).
func ASEFill(f Fiber, lambda int) []int {
	live := make(map[int]bool, len(f.Slots))
	for _, s := range f.Slots {
		live[s] = true
	}
	var fill []int
	for s := 0; s < lambda; s++ {
		if !live[s] {
			fill = append(fill, s)
		}
	}
	return fill
}

// FiberCount returns how many fibers PackDC would use for the demands —
// the §4.3 per-DC fiber requirement (full fibers plus one residual per
// fractional destination).
func FiberCount(demands []Demand, lambda int) (int, error) {
	fibers, err := PackDC(demands, lambda)
	if err != nil {
		return 0, err
	}
	return len(fibers), nil
}

// ---------------------------------------------------------------------------
// Wavelength assignment for a pure wavelength-switched design.

// Lightpath is one wavelength-granularity circuit: the set of fiber-link
// IDs it traverses. Two lightpaths sharing any link must use different
// wavelengths (the wavelength-continuity constraint of all-optical
// wavelength routing).
type Lightpath struct {
	ID    int
	Links []int
}

// ColorLightpaths assigns a wavelength index to every lightpath such that
// no two lightpaths sharing a link receive the same index, using greedy
// largest-degree-first (Welsh–Powell) coloring. It returns the assignment
// (indexed like the input) and the number of wavelengths used.
//
// This is the graph-coloring problem Appendix B identifies as the extra
// complexity of wavelength switching; Iris avoids it entirely.
func ColorLightpaths(paths []Lightpath) ([]int, int) {
	n := len(paths)
	if n == 0 {
		return nil, 0
	}
	// Conflict adjacency via link → paths index.
	byLink := make(map[int][]int)
	for i, p := range paths {
		for _, l := range p.Links {
			byLink[l] = append(byLink[l], i)
		}
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, members := range byLink {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a != b {
					adj[a][b] = true
					adj[b][a] = true
				}
			}
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		dx, dy := len(adj[order[x]]), len(adj[order[y]])
		if dx != dy {
			return dx > dy
		}
		return paths[order[x]].ID < paths[order[y]].ID
	})

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := 0
	for _, i := range order {
		used := make(map[int]bool, len(adj[i]))
		for j := range adj[i] {
			if colors[j] >= 0 {
				used[colors[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[i] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return colors, maxColor
}

// ValidColoring reports whether the assignment is conflict-free.
func ValidColoring(paths []Lightpath, colors []int) bool {
	if len(colors) != len(paths) {
		return false
	}
	byLink := make(map[int][]int)
	for i, p := range paths {
		if colors[i] < 0 {
			return false
		}
		for _, l := range p.Links {
			byLink[l] = append(byLink[l], i)
		}
	}
	for _, members := range byLink {
		seen := make(map[int]int, len(members))
		for _, i := range members {
			if prev, ok := seen[colors[i]]; ok && prev != i {
				return false
			}
			seen[colors[i]] = i
		}
	}
	return true
}

// MinLoadLowerBound returns the trivial lower bound on the wavelengths any
// assignment needs: the maximum number of lightpaths sharing one link.
func MinLoadLowerBound(paths []Lightpath) int {
	byLink := make(map[int]int)
	maxLoad := 0
	for _, p := range paths {
		seen := make(map[int]bool, len(p.Links))
		for _, l := range p.Links {
			if seen[l] {
				continue
			}
			seen[l] = true
			byLink[l]++
			if byLink[l] > maxLoad {
				maxLoad = byLink[l]
			}
		}
	}
	return maxLoad
}
