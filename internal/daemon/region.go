package daemon

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"time"

	"iris/internal/chaos"
	"iris/internal/control"
	"iris/internal/fabric"
	"iris/internal/flowsim"
	"iris/internal/history"
	"iris/internal/optics"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// Region is the lifecycle a multi-region supervisor drives: one converged
// regional control plane that can be stepped, probed, inspected and
// scraped independently of its siblings. *Daemon is the canonical
// implementation; the fleet scheduler accepts any Region so its isolation
// properties are testable against fakes.
//
// Region embeds chaos.ControlPlane (Healthy, ConvergedNow, RepairNow), so
// every Region can also be driven through fleet-coordinated chaos cycles.
type Region interface {
	chaos.ControlPlane

	// Step runs one control-loop iteration and reports whether the
	// region's traffic feed is exhausted.
	Step() (done bool)
	// ProbeOnce probes device health and advances breaker state.
	ProbeOnce()
	// Status snapshots the region for aggregation.
	Status() Status
	// Demand returns the region's last-converged demand aggregate for the
	// inter-region demand bus (ok=false before the first convergence).
	Demand() (DemandSummary, bool)
	// Handler is the region's own debug/metrics HTTP surface, reverse-
	// proxied by the fleet under /regions/{id}/.
	Handler() http.Handler
	// Registry is the region's instance-scoped metrics registry, merged
	// region-labelled into the fleet-wide /metrics scrape.
	Registry() *telemetry.Registry
	// History is the region's reconfiguration history lake, aggregated by
	// the fleet's /api/history (nil when the region keeps no history).
	History() *history.Lake
}

// Daemon must satisfy the Region lifecycle it was factored from.
var _ Region = (*Daemon)(nil)

// DemandSummary is one region's hose-aggregate view of its current
// demand: what it publishes on the fleet's inter-region demand bus. The
// per-DC totals are exactly the hose-model aggregates (each DC's total
// send/receive demand), so cross-region consumers reason about skew
// without seeing full matrices.
type DemandSummary struct {
	// Step is the control-loop iteration the matrix was taken on.
	Step int `json:"step"`
	// Total is the matrix's total demand in wavelength units.
	Total float64 `json:"total"`
	// PerDC maps DC node id to its hose aggregate (sum of incident pair
	// demand), in wavelength units.
	PerDC map[int]float64 `json:"per_dc,omitempty"`
	// MaxPair is the largest single pair demand.
	MaxPair float64 `json:"max_pair"`
	// Pairs counts pairs with non-zero demand.
	Pairs int `json:"pairs"`
}

// Demand summarises the demand matrix the region last converged on.
func (d *Daemon) Demand() (DemandSummary, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lastMatrix == nil {
		return DemandSummary{}, false
	}
	s := DemandSummary{
		Step:  d.steps,
		Total: d.lastMatrix.Total(),
		PerDC: d.lastMatrix.PerDC(),
	}
	for _, dm := range d.lastMatrix.Demand {
		if dm > 0 {
			s.Pairs++
			if dm > s.MaxPair {
				s.MaxPair = dm
			}
		}
	}
	return s, true
}

// RegionConfig describes one full region to assemble: the planned and
// materialised fabric, its evolving traffic feed with optional diurnal and
// flash-crowd shaping, optional chaos fault shims, optional flow-impact
// monitoring, and the daemon supervising it all. It is the single
// assembly path shared by cmd/irisd and the fleet supervisor, so the two
// cannot drift. Construct with DefaultRegionConfig and mutate.
type RegionConfig struct {
	// Toy selects the paper's Fig. 10 toy region; otherwise a map is
	// generated and DCs placed from Seed / DCs.
	Toy bool
	// Seed seeds the map, traffic and jitter; derived streams use
	// Seed+1..Seed+4 so one value pins the whole region.
	Seed int64
	DCs  int
	// DCCapacity and Lambda pass through to fabric bring-up (0 = its
	// defaults: 10 fiber-pairs, 40 wavelengths).
	DCCapacity int
	Lambda     int
	// OSSDelay is the emulated switch settling time.
	OSSDelay time.Duration
	// RPCTimeout is the per-device RPC deadline (0 = control default).
	RPCTimeout time.Duration

	// Control-loop knobs, forwarded to daemon.Config.
	Interval         time.Duration
	MaxBatch         int
	ProbeInterval    time.Duration
	FailureThreshold int
	BackoffBase      time.Duration
	BackoffMax       time.Duration

	// Steps bounds the traffic feed (0 = endless).
	Steps int
	// ShiftBound is the §6.3 change-process bound (≤0 = pair swaps).
	ShiftBound float64
	// Util is the traffic process's target hose utilisation.
	Util float64

	// TraceEvents sizes the region's flight recorder (0 disables tracing).
	TraceEvents int
	// HistoryRecords bounds the reconfiguration history lake (0 selects
	// the lake's default of 512; negative disables history entirely).
	HistoryRecords int
	// HistoryPath, when non-empty, persists history records as JSONL and
	// replays the file's tail on bring-up.
	HistoryPath string
	// Chaos wraps every device in a fault shim and arms a live injector.
	Chaos bool

	// Robust arms METTEOR-style robust reconfiguration: one envelope
	// allocation covers a window of matrices and reconfiguration is
	// skipped while the live demand stays inside it. The Robust* knobs
	// mirror irisd's -robust-* flags (0 selects the policy defaults:
	// window 4, headroom 1.15, forecast 2, budget 8).
	Robust         bool
	RobustWindow   int
	RobustHeadroom float64
	RobustForecast int
	RobustBudget   int

	// FlowLoad arms the flow-impact monitor; the Flow* knobs mirror
	// irisd's -flow-* flags.
	FlowLoad   bool
	FlowDist   string
	FlowUtil   float64
	FlowWindow time.Duration
	FlowGbps   float64
	// Profile shapes demand and flow arrivals (diurnal + flash crowds);
	// the zero profile is flat.
	Profile traffic.LoadProfile

	// Registry receives the region's metrics (a fresh instance-scoped one
	// if nil — required when many regions share a process).
	Registry *telemetry.Registry
	// Logger receives structured logs (silent if nil).
	Logger *slog.Logger
	// Now is the clock (time.Now if nil; tests inject a fake).
	Now func() time.Time
}

// DefaultRegionConfig returns irisd's region defaults: the toy map, 2 s
// control loop, 1 s probes, flat traffic at 0.7 hose utilisation, tracing
// on, chaos and flow monitoring off.
func DefaultRegionConfig() RegionConfig {
	return RegionConfig{
		Toy:            true,
		Seed:           1,
		DCs:            5,
		OSSDelay:       time.Duration(optics.OSSSwitchTimeMS) * time.Millisecond,
		Interval:       2 * time.Second,
		MaxBatch:       1,
		ProbeInterval:  time.Second,
		ShiftBound:     0.4,
		Util:           0.7,
		TraceEvents:    4096,
		HistoryRecords: 512,
		RobustWindow:   4,
		RobustHeadroom: 1.15,
		RobustForecast: 2,
		RobustBudget:   8,
		FlowDist:       "web2",
		FlowUtil:       0.6,
		FlowWindow:     4 * time.Second,
		FlowGbps:       0.25,
	}
}

// BuiltRegion is one assembled region: the rig, the daemon supervising
// it, and every optional subsystem that was armed. Close tears the
// emulated testbed down.
type BuiltRegion struct {
	Daemon *Daemon
	Rig    *fabric.Rig
	// Feed is the daemon's traffic source after limiting/shaping/tracing.
	Feed traffic.Source
	// Devices and Injector are non-nil when Chaos was requested.
	Devices  *chaos.DeviceSet
	Injector *chaos.Injector
	// Monitor is non-nil when FlowLoad was requested.
	Monitor *flowsim.Monitor
	// Shape is the seeded diurnal/flash realisation (nil when flat).
	Shape *traffic.Shape
	// Tracer is the region's flight recorder (nil when disabled).
	Tracer *trace.Tracer
	// History is the region's reconfiguration history lake (nil when
	// disabled).
	History *history.Lake
	// Registry is the region's instance-scoped metrics registry.
	Registry *telemetry.Registry
}

// Close shuts the region's emulated testbed down and flushes the history
// lake's persistence file.
func (b *BuiltRegion) Close() {
	b.Rig.Close()
	_ = b.History.Close()
}

// BuildRegion assembles one region end to end: plan and materialise the
// fabric (optionally behind chaos fault shims), build the seeded evolving
// traffic feed with optional load shaping and step limiting, arm the
// injector and flow monitor on the region's registry, and construct the
// supervising daemon. It is the wiring cmd/irisd previously inlined,
// factored out so the fleet builds its N regions through the same path.
func BuildRegion(cfg RegionConfig) (*BuiltRegion, error) {
	var tracer *trace.Tracer
	if cfg.TraceEvents > 0 {
		tracer = trace.New(cfg.TraceEvents)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	var devs *chaos.DeviceSet
	bringUp := fabric.BringUpConfig{
		Toy: cfg.Toy, Seed: cfg.Seed, DCs: cfg.DCs,
		DCCapacity: cfg.DCCapacity, Lambda: cfg.Lambda,
		OSSDelay: cfg.OSSDelay,
		Dial:     control.DialOptions{RPCTimeout: cfg.RPCTimeout},
		Tracer:   tracer,
	}
	if cfg.Chaos {
		devs = chaos.NewDeviceSet()
		bringUp.WrapDevice = devs.Wrap
	}
	rig, err := fabric.BringUp(bringUp)
	if err != nil {
		return nil, fmt.Errorf("daemon: build region: %w", err)
	}
	// Past this point every failure must tear the testbed down, or a fleet
	// bring-up that fails on region k would leak k-1 device sets.
	fail := func(err error) (*BuiltRegion, error) {
		rig.Close()
		return nil, fmt.Errorf("daemon: build region: %w", err)
	}

	// Traffic: a heavy-tailed base matrix evolved by the §6.3 change
	// process, in wavelength units against each DC's hose capacity.
	caps := make(map[int]float64)
	for dc, c := range rig.Dep.Region.Capacity {
		caps[dc] = float64(c * rig.Dep.Region.Lambda)
	}
	m := rig.Dep.Region.Map
	base := traffic.HeavyTailed(rand.New(rand.NewSource(cfg.Seed)), m.DCs(), caps, cfg.Util)
	var feed traffic.Source = traffic.NewEvolver(cfg.Seed+1, base,
		traffic.ChangeProcess{Bound: cfg.ShiftBound, Caps: caps, Util: cfg.Util})

	var shape *traffic.Shape
	if !cfg.Profile.Flat() {
		shape, err = traffic.NewShape(cfg.Seed+2, cfg.Profile, (24 * time.Hour).Seconds())
		if err != nil {
			return fail(err)
		}
		feed = traffic.Shaped(feed, shape, cfg.Interval.Seconds(), caps)
	}
	if cfg.Steps > 0 {
		feed = traffic.Limit(feed, cfg.Steps)
	}
	feed = traffic.Traced(feed, tracer)

	// The injector and flow monitor share the region's registry so
	// iris_chaos_* and iris_flowsim_* land on the same scrape as the
	// control-loop metrics.
	var inj *chaos.Injector
	if cfg.Chaos {
		inj, err = chaos.NewInjector(chaos.InjectorConfig{
			Devices:  devs,
			Fab:      rig.Fab,
			Tracer:   tracer,
			Registry: reg,
			Now:      cfg.Now,
		})
		if err != nil {
			return fail(err)
		}
	}
	var lake *history.Lake
	if cfg.HistoryRecords >= 0 {
		lake, err = history.New(history.Config{
			Capacity: cfg.HistoryRecords,
			Path:     cfg.HistoryPath,
			Registry: reg,
		})
		if err != nil {
			return fail(err)
		}
	}
	var mon *flowsim.Monitor
	if cfg.FlowLoad {
		dist, ok := traffic.WorkloadByName(cfg.FlowDist)
		if !ok {
			return fail(fmt.Errorf("unknown flow workload %q (want web1, web2, hadoop or cache)", cfg.FlowDist))
		}
		mon, err = flowsim.NewMonitor(flowsim.MonitorConfig{
			Seed: cfg.Seed + 3, Dist: dist, Util: cfg.FlowUtil,
			GbpsPerWavelength: cfg.FlowGbps,
			WindowS:           cfg.FlowWindow.Seconds(),
			Shape:             shape,
			Registry:          reg,
		})
		if err != nil {
			return fail(err)
		}
	}

	var pol *RobustPolicy
	if cfg.Robust {
		pol = &RobustPolicy{
			Window:   cfg.RobustWindow,
			Forecast: cfg.RobustForecast,
			CP:       traffic.ChangeProcess{Bound: cfg.ShiftBound, Caps: caps, Util: cfg.Util},
			Seed:     cfg.Seed + 4,
			Headroom: cfg.RobustHeadroom,
			Budget:   cfg.RobustBudget,
		}
	}

	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             feed,
		Interval:         cfg.Interval,
		MaxBatch:         cfg.MaxBatch,
		ProbeInterval:    cfg.ProbeInterval,
		FailureThreshold: cfg.FailureThreshold,
		BackoffBase:      cfg.BackoffBase,
		BackoffMax:       cfg.BackoffMax,
		Seed:             cfg.Seed,
		Registry:         reg,
		Now:              cfg.Now,
		Logger:           cfg.Logger,
		Tracer:           tracer,
		Chaos:            inj,
		FlowMonitor:      mon,
		History:          lake,
		Robust:           pol,
	})
	if err != nil {
		return fail(err)
	}
	return &BuiltRegion{
		Daemon:   d,
		Rig:      rig,
		Feed:     feed,
		Devices:  devs,
		Injector: inj,
		Monitor:  mon,
		Shape:    shape,
		Tracer:   tracer,
		History:  lake,
		Registry: reg,
	}, nil
}
