package daemon

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"iris/internal/flowsim"
	"iris/internal/telemetry"
	"iris/internal/traffic"
)

// TestDaemonReportsFlowImpact wires the flow monitor into the control
// loop: after a real reconfiguration the daemon must publish the
// simulated slowdown on /status (flow_impact) and iris_flowsim_* on
// /metrics.
func TestDaemonReportsFlowImpact(t *testing.T) {
	rig := toyRig(t, nil)
	reg := telemetry.NewRegistry()
	mon, err := flowsim.NewMonitor(flowsim.MonitorConfig{
		Seed: 11, GbpsPerWavelength: 0.01, WindowS: 2, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95), // forces circuit moves → a monitored reconfig
	)
	d, err := New(Config{
		Fab:         rig.Fab,
		Controller:  rig.Testbed.Controller,
		Feed:        feed,
		Registry:    reg,
		FlowMonitor: mon,
		Logger:      testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ProbeOnce()
	d.Step() // first convergence: no LKG yet, nothing to compare against
	if mon.Last() != nil {
		t.Error("first convergence observed an impact without a prior allocation")
	}
	d.Step()
	imp := mon.Last()
	if imp == nil {
		t.Fatal("second shift reconfigured but no flow impact was observed")
	}
	if imp.Kind != "reconfig" || imp.Pipes == 0 || imp.Flows == 0 {
		t.Fatalf("impact = %+v, want a reconfig with dimmed pipes and flows", imp)
	}
	if imp.P99 < 1 {
		t.Errorf("p99 slowdown %v < 1", imp.P99)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.FlowImpact == nil {
		t.Fatal("/status has no flow_impact")
	}
	if st.FlowImpact.ReconfigID != imp.ReconfigID || st.FlowImpact.P99 != imp.P99 {
		t.Errorf("/status flow_impact %+v != monitor %+v", st.FlowImpact, imp)
	}

	res, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		"iris_flowsim_runs_total 1",
		`iris_flowsim_slowdown{quantile="p999"}`,
		"iris_flowsim_flows_simulated_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
