package daemon

import (
	"time"

	"iris/internal/core"
	"iris/internal/history"
	"iris/internal/hose"
	"iris/internal/topoapi"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// History returns the daemon's reconfiguration history lake (nil when
// none was configured).
func (d *Daemon) History() *history.Lake { return d.cfg.History }

// CommittedAlloc returns the last-known-good allocation the devices are
// serving (ok=false before the first convergence). The allocation is a
// committed snapshot — the incremental allocator mutates its own books,
// never this value — so callers may read it without copying.
func (d *Daemon) CommittedAlloc() (core.Allocation, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lkg, d.haveLKG
}

// HistoryBooks supplies the committed allocation and the hose aggregate
// of the demand it serves — the pre/post bracket a chaos cycle records.
// It satisfies chaos.CycleConfig.Books.
func (d *Daemon) HistoryBooks() (core.Allocation, history.HoseAggregate) {
	d.mu.Lock()
	lkg, last := d.lkg, d.lastMatrix
	d.mu.Unlock()
	return lkg, hoseAgg(last)
}

// healthBrief reduces the daemon's status to the health triple history
// records bracket reconfigurations with.
func (d *Daemon) healthBrief() history.Health {
	st := d.Status()
	return history.Health{Healthy: st.Healthy, Converged: st.Converged, NeedRepair: st.NeedRepair}
}

// hoseAgg summarises a demand matrix for a history record (zero for nil,
// the state before the first convergence).
func hoseAgg(m *traffic.Matrix) history.HoseAggregate {
	var agg history.HoseAggregate
	if m == nil {
		return agg
	}
	for _, dm := range m.Demand {
		if dm <= 0 {
			continue
		}
		agg.Total += dm
		agg.Pairs++
		if dm > agg.MaxPair {
			agg.MaxPair = dm
		}
	}
	return agg
}

// recordHistory appends one record to the history lake (no-op without
// one). Call it after the operation's root span has finished so the
// captured Spans include the complete trace.
func (d *Daemon) recordHistory(trig history.Trigger, id uint64, at time.Time,
	preHealth history.Health, preHose, postHose history.HoseAggregate,
	oldAlloc, newAlloc core.Allocation, dep *core.Deployment, opErr error) {
	if d.cfg.History == nil {
		return
	}
	rec := history.Record{
		ReconfigID: id,
		Trigger:    trig,
		At:         at,
		Duration:   d.now().Sub(at),
		PreHealth:  preHealth,
		PostHealth: d.healthBrief(),
		PreHose:    preHose,
		PostHose:   postHose,
		Pairs:      core.DiffAlloc(oldAlloc, newAlloc),
		Spans:      d.tracer.Events(trace.Filter{TraceID: id}),
	}
	rec.Ducts = dep.DuctDeltas(rec.Pairs)
	if opErr != nil {
		rec.Err = opErr.Error()
	}
	d.cfg.History.Append(rec)
}

// topoSnapshot is the topology API's view of the region: the committed
// deployment, allocation and demand. The allocation is the immutable
// last-known-good snapshot; the demand map is copied because the traffic
// evolver mutates matrices in place.
func (d *Daemon) topoSnapshot() topoapi.Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	snap := topoapi.Snapshot{Dep: d.fab.Deployment(), Ready: d.haveLKG}
	if d.haveLKG {
		snap.Alloc = d.lkg
	}
	if d.lastMatrix != nil {
		snap.Demand = make(map[hose.Pair]float64, len(d.lastMatrix.Demand))
		for p, dm := range d.lastMatrix.Demand {
			if dm > 0 {
				snap.Demand[p] = dm
			}
		}
	}
	if d.robustRes != nil {
		snap.Robust = d.robustRes.Envelope
	}
	return snap
}
