package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iris/internal/control"
	"iris/internal/fabric"
	"iris/internal/hose"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// testLogger routes the daemon's structured logs into t.Logf.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// toyRig brings up the toy region; opts may adjust the bring-up (fault
// wrappers, transport deadlines).
func toyRig(t *testing.T, mutate func(*fabric.BringUpConfig)) *fabric.Rig {
	t.Helper()
	cfg := fabric.BringUpConfig{Toy: true}
	if mutate != nil {
		mutate(&cfg)
	}
	rig, err := fabric.BringUp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

func toyMatrix(rig *fabric.Rig, d01, d02 float64) *traffic.Matrix {
	dcs := rig.Dep.Region.Map.DCs()
	tm := traffic.NewMatrix(dcs)
	tm.Set(hose.Pair{A: dcs[0], B: dcs[1]}, d01)
	tm.Set(hose.Pair{A: dcs[0], B: dcs[2]}, d02)
	return tm
}

// TestDaemonThreeShifts is the deterministic end-to-end loop test: three
// distinct traffic matrices replayed through the daemon, every reconfig
// audited, status surface checked after each step.
func TestDaemonThreeShifts(t *testing.T) {
	rig := toyRig(t, nil)
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95),
		toyMatrix(rig, 80, 10),
	)
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       feed,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}

	d.ProbeOnce()
	if !d.Healthy() {
		t.Fatal("fresh testbed reported unhealthy")
	}
	for i := 0; i < 3; i++ {
		if done := d.Step(); done {
			t.Fatalf("feed exhausted after %d shifts, want 3", i)
		}
		// Every reconfiguration must leave devices matching intent.
		if err := d.Audit(); err != nil {
			t.Fatalf("audit after shift %d: %v", i+1, err)
		}
		st := d.Status()
		if !st.Converged {
			t.Fatalf("not converged after shift %d: %+v", i+1, st)
		}
		if st.Circuits == 0 {
			t.Fatalf("no active circuits after shift %d", i+1)
		}
	}
	if done := d.Step(); !done {
		t.Fatal("4th step did not report feed exhaustion")
	}

	st := d.Status()
	if st.Steps != 4 {
		t.Errorf("steps = %d, want 4", st.Steps)
	}
	if !st.LastAuditOK || st.NeedRepair || st.LastError != "" {
		t.Errorf("unexpected end state: %+v", st)
	}
	if got := counterValue(t, d.Registry(), "iris_reconfig_total"); got != 3 {
		t.Errorf("iris_reconfig_total = %v, want 3", got)
	}
	if got := counterValue(t, d.Registry(), "iris_audit_failures_total"); got != 0 {
		t.Errorf("iris_audit_failures_total = %v, want 0", got)
	}
}

// TestDaemonSkipsEqualAllocation verifies an unchanged demand does not
// trigger a device reconfiguration.
func TestDaemonSkipsEqualAllocation(t *testing.T) {
	rig := toyRig(t, nil)
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 60, 45), // identical → same allocation
	)
	d, err := New(Config{Fab: rig.Fab, Controller: rig.Testbed.Controller, Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	d.Step()
	if got := counterValue(t, d.Registry(), "iris_reconfig_total"); got != 1 {
		t.Errorf("iris_reconfig_total = %v, want 1 (second identical shift must be a no-op)", got)
	}
}

// counterValue reads an unlabeled counter the daemon already registered;
// registration is single-shot, so tests must look up, never re-claim.
func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	c := reg.LookupCounter(name)
	if c == nil {
		t.Fatalf("counter %s not registered", name)
	}
	return c.Value()
}

// TestHTTPSurface exercises /status, /metrics and /healthz end to end.
func TestHTTPSurface(t *testing.T) {
	rig := toyRig(t, nil)
	feed := traffic.NewReplay(toyMatrix(rig, 60, 45))
	d, err := New(Config{Fab: rig.Fab, Controller: rig.Testbed.Controller, Feed: feed})
	if err != nil {
		t.Fatal(err)
	}
	d.ProbeOnce()
	d.Step()

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatalf("decode /status: %v", err)
	}
	res.Body.Close()
	if !st.Healthy || !st.Converged || st.Circuits == 0 {
		t.Errorf("/status = %+v, want healthy converged with circuits", st)
	}
	if len(st.Devices) != len(rig.Testbed.Controller.Devices()) {
		t.Errorf("/status lists %d devices, want %d", len(st.Devices), len(rig.Testbed.Controller.Devices()))
	}
	if len(st.Allocation) == 0 {
		t.Error("/status has no allocation entries")
	}

	res, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE iris_reconfig_total counter",
		"iris_reconfig_total 1",
		"# TYPE iris_breaker_state gauge",
		"iris_reconfig_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	res, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Errorf("/healthz = %d, want 200", res.StatusCode)
	}
}

// TestRunGracefulShutdown drives Run with real (tiny) tickers against an
// infinite evolving feed and cancels it; Run must drain and return nil.
func TestRunGracefulShutdown(t *testing.T) {
	rig := toyRig(t, nil)
	caps := make(map[int]float64)
	for dc, c := range rig.Dep.Region.Capacity {
		caps[dc] = float64(c * rig.Dep.Region.Lambda)
	}
	feed := traffic.NewEvolver(11, toyMatrix(rig, 60, 45),
		traffic.ChangeProcess{Bound: 0.4, Caps: caps, Util: 0.5})
	d, err := New(Config{
		Fab:           rig.Fab,
		Controller:    rig.Testbed.Controller,
		Feed:          feed,
		Interval:      5 * time.Millisecond,
		ProbeInterval: 3 * time.Millisecond,
		Logger:        testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- d.Run(ctx) }()
	time.Sleep(60 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	// The drained shutdown must leave devices matching intent.
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after shutdown: %v", err)
	}
	if d.Status().Steps == 0 {
		t.Error("Run made no steps")
	}
}

// TestDialOptionsOnRig sanity-checks that bring-up's transport deadlines
// still let a healthy region converge.
func TestDialOptionsOnRig(t *testing.T) {
	rig := toyRig(t, func(cfg *fabric.BringUpConfig) {
		cfg.Dial = control.DialOptions{DialTimeout: time.Second, RPCTimeout: time.Second}
	})
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(toyMatrix(rig, 60, 45)),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigTraceTree is the deterministic end-to-end trace test: a
// live flight recorder is threaded from bring-up through two traffic
// shifts, then the second reconfiguration's span tree is pulled from the
// recorder and over HTTP and checked for the full ordered §5.2 sequence
// with per-device children.
func TestReconfigTraceTree(t *testing.T) {
	tracer := trace.New(4096)
	rig := toyRig(t, func(cfg *fabric.BringUpConfig) { cfg.Tracer = tracer })
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95), // forces fiber moves: drains carry real ops
	)
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       feed,
		Tracer:     tracer,
		Logger:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ProbeOnce()
	for i := 0; i < 2; i++ {
		if done := d.Step(); done {
			t.Fatalf("feed exhausted after %d shifts", i)
		}
	}
	st := d.Status()
	if st.LastReconfigID == 0 {
		t.Fatal("status has no last reconfig ID")
	}

	checkTree := func(roots []*trace.Node) {
		t.Helper()
		if len(roots) != 1 {
			t.Fatalf("got %d roots, want 1", len(roots))
		}
		root := roots[0]
		if root.Name != "reconfig" || root.TraceID != st.LastReconfigID {
			t.Fatalf("root = %q trace %d, want reconfig trace %d", root.Name, root.TraceID, st.LastReconfigID)
		}
		var names []string
		devChildren := 0
		for _, c := range root.Children {
			names = append(names, c.Name)
			for _, dc := range c.Children {
				if dc.Device == "" {
					t.Errorf("child %q of phase %q has no device attribution", dc.Name, c.Name)
				}
				if dc.DurationMS < 0 {
					t.Errorf("device span %q has negative duration", dc.Name)
				}
				devChildren++
			}
		}
		want := "compile,drain,switch,amps,retune,fill,undrain,audit"
		if got := strings.Join(names, ","); got != want {
			t.Fatalf("phase order %q, want %q", got, want)
		}
		if devChildren == 0 {
			t.Fatal("no per-device spans recorded under any phase")
		}
	}

	// Straight from the recorder.
	checkTree(d.DebugEvents(st.LastReconfigID).Tree)

	// Over HTTP, exactly as an operator would pull it.
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(fmt.Sprintf("%s/debug/events?reconfig=%d", srv.URL, st.LastReconfigID))
	if err != nil {
		t.Fatal(err)
	}
	var dump EventsDump
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if dump.ReconfigID != st.LastReconfigID {
		t.Errorf("dump echoes reconfig %d, want %d", dump.ReconfigID, st.LastReconfigID)
	}
	if len(dump.Events) == 0 {
		t.Fatal("/debug/events returned no events")
	}
	checkTree(dump.Tree)

	// /debug/trace serves assembled trees for the most recent traces.
	res, err = srv.Client().Get(srv.URL + "/debug/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var trees []*trace.Node
	if err := json.NewDecoder(res.Body).Decode(&trees); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	checkTree(trees)

	// /status carries the reconfig ID and per-device breaker timestamps
	// are absent until a first transition.
	res, err = srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got.LastReconfigID != st.LastReconfigID {
		t.Errorf("/status last_reconfig_id = %d, want %d", got.LastReconfigID, st.LastReconfigID)
	}
	for _, ds := range got.Devices {
		if ds.BreakerSince != nil {
			t.Errorf("device %s has breaker_since with no transitions", ds.Name)
		}
	}

	// /metrics: the reconfiguration phases and the bring-up plan's
	// Algorithm-1 stages are both populated.
	res, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`iris_reconfig_phase_seconds_count{phase="drain"} 2`,
		`iris_reconfig_phase_seconds_count{phase="switch"} 2`,
		`iris_reconfig_phase_seconds_count{phase="retune"} 2`,
		`iris_reconfig_phase_seconds_count{phase="undrain"} 2`,
		`iris_plan_stage_seconds_count{stage="route"} 1`,
		`iris_plan_stage_seconds_count{stage="provision"} 1`,
		`iris_plan_stage_seconds_count{stage="total"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The bring-up plan trace is in the recorder too: a "plan" root with
	// Algorithm-1 stage children.
	var planRoot *trace.Node
	for _, n := range tracer.Traces(100) {
		if n.Name == "plan" {
			planRoot = n
		}
	}
	if planRoot == nil {
		t.Fatal("no plan trace recorded at bring-up")
	}
	stages := make(map[string]bool)
	for _, c := range planRoot.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"route", "amps", "cutthrough", "provision", "total"} {
		if !stages[want] {
			t.Errorf("plan trace missing stage %q (have %v)", want, stages)
		}
	}
}

// TestBreakerSinceAndTraceEvents checks that breaker transitions stamp
// /status timestamps and land in the flight recorder as instant events.
func TestBreakerSinceAndTraceEvents(t *testing.T) {
	tracer := trace.New(256)
	rig, shims := faultRig(t, nil)
	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             traffic.NewReplay(toyMatrix(rig, 60, 45)),
		FailureThreshold: 1,
		Tracer:           tracer,
		Logger:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ProbeOnce()
	for _, ds := range d.Status().Devices {
		if ds.BreakerSince != nil {
			t.Errorf("healthy device %s already has breaker_since", ds.Name)
		}
	}

	victim := pickVictim(rig)
	shims[victim].set(true, 0)
	d.ProbeOnce()

	if got := breakerOf(t, d, victim); got != "open" {
		t.Fatalf("breaker = %q after failed probe at threshold 1, want open", got)
	}
	for _, ds := range d.Status().Devices {
		if ds.Name == victim && ds.BreakerSince == nil {
			t.Error("open breaker has no breaker_since timestamp")
		}
	}
	var flips int
	for _, ev := range tracer.Events(trace.Filter{}) {
		if ev.Name == "breaker" && ev.Device == victim && ev.Attr == "open" {
			flips++
		}
	}
	if flips != 1 {
		t.Errorf("recorder has %d breaker-open events for %s, want 1", flips, victim)
	}
}
