package daemon

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"iris/internal/chaos"
	"iris/internal/flowsim"
	"iris/internal/hose"
	"iris/internal/topoapi"
	"iris/internal/trace"
)

// Status is the daemon's introspection snapshot, served as JSON on
// /status.
type Status struct {
	Healthy    bool `json:"healthy"`
	NeedRepair bool `json:"need_repair"`
	// Converged: healthy, nothing pending, devices match intent.
	Converged bool   `json:"converged"`
	Steps     int    `json:"steps"`
	LastError string `json:"last_error,omitempty"`

	LastAuditOK bool       `json:"last_audit_ok"`
	LastAuditAt *time.Time `json:"last_audit_at,omitempty"`
	// AllocationAgeSeconds is the staleness of the last successful
	// convergence.
	AllocationAgeSeconds float64 `json:"allocation_age_seconds"`
	PendingShift         bool    `json:"pending_shift"`
	// LastReconfigID is the reconfig ID of the last change the devices
	// accepted — the handle for /debug/events?reconfig=<id>.
	LastReconfigID uint64 `json:"last_reconfig_id,omitempty"`

	Circuits   int              `json:"circuits"`
	Allocation []PairAllocation `json:"allocation,omitempty"`
	Devices    []DeviceStatus   `json:"devices"`

	// Chaos is the fault injector's snapshot (absent when no injector is
	// configured).
	Chaos *chaos.Status `json:"chaos,omitempty"`

	// FlowImpact is the simulated flow-level cost of the last
	// reconfiguration or repair (absent until the flow monitor has
	// observed one).
	FlowImpact *flowsim.Impact `json:"flow_impact,omitempty"`

	// Robust is the robust-mode envelope block (absent unless a
	// RobustPolicy is armed).
	Robust *RobustStatus `json:"robust,omitempty"`
}

// PairAllocation is one DC pair's current circuit assignment.
type PairAllocation struct {
	A        int `json:"a"`
	B        int `json:"b"`
	Fibers   int `json:"fibers"`
	Residual int `json:"residual"`
}

// DeviceStatus is one device's supervision state.
type DeviceStatus struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"`
	// BreakerSince is when the breaker last changed state (absent until
	// the first transition).
	BreakerSince        *time.Time `json:"breaker_since,omitempty"`
	ConsecutiveFailures int        `json:"consecutive_failures"`
	LastError           string     `json:"last_error,omitempty"`
	RetryInSeconds      float64    `json:"retry_in_seconds,omitempty"`
}

// Status snapshots the daemon's current intent and device supervision
// state.
func (d *Daemon) Status() Status {
	now := d.now()

	d.mu.Lock()
	st := Status{
		NeedRepair: d.needRepair,
		Steps:      d.steps,
		LastError:  d.lastErr,
	}
	st.LastAuditOK = d.lastAuditOK
	if !d.lastAuditAt.IsZero() {
		at := d.lastAuditAt
		st.LastAuditAt = &at
	}
	if d.haveLKG {
		st.AllocationAgeSeconds = now.Sub(d.lastGoodAt).Seconds()
		seen := make(map[[2]int]bool)
		add := func(a, b int) {
			k := [2]int{a, b}
			if seen[k] {
				return
			}
			seen[k] = true
			p := hose.Pair{A: a, B: b}
			f, r := d.lkg.Fibers[p], d.lkg.Residual[p]
			if f > 0 || r > 0 {
				st.Allocation = append(st.Allocation, PairAllocation{A: a, B: b, Fibers: f, Residual: r})
			}
		}
		for p := range d.lkg.Fibers {
			add(p.A, p.B)
		}
		for p := range d.lkg.Residual {
			add(p.A, p.B)
		}
	}
	st.PendingShift = d.pending != nil
	st.LastReconfigID = d.lastReconfigID
	st.Circuits = d.fab.CircuitCount()
	d.mu.Unlock()
	sort.Slice(st.Allocation, func(i, j int) bool {
		if st.Allocation[i].A != st.Allocation[j].A {
			return st.Allocation[i].A < st.Allocation[j].A
		}
		return st.Allocation[i].B < st.Allocation[j].B
	})

	d.hmu.Lock()
	names := make([]string, 0, len(d.health))
	for name := range d.health {
		names = append(names, name)
	}
	sort.Strings(names)
	healthy := true
	for _, name := range names {
		h := d.health[name]
		ds := DeviceStatus{
			Name:                name,
			Breaker:             h.state.String(),
			ConsecutiveFailures: h.consecFails,
			LastError:           h.lastErr,
		}
		if !h.since.IsZero() {
			since := h.since
			ds.BreakerSince = &since
		}
		if h.state == breakerOpen && h.openUntil.After(now) {
			ds.RetryInSeconds = h.openUntil.Sub(now).Seconds()
		}
		if h.state != breakerClosed {
			healthy = false
		}
		st.Devices = append(st.Devices, ds)
	}
	d.hmu.Unlock()

	st.Healthy = healthy
	st.Converged = healthy && !st.NeedRepair && !st.PendingShift && st.LastAuditOK
	if d.cfg.Chaos != nil {
		snap := d.cfg.Chaos.Snapshot()
		st.Chaos = &snap
	}
	if d.cfg.FlowMonitor != nil {
		st.FlowImpact = d.cfg.FlowMonitor.Last()
	}
	st.Robust = d.robustStatus()
	return st
}

// EventsDump is the /debug/events payload: the flight recorder's raw
// events plus, when filtered to one trace, the assembled span tree.
type EventsDump struct {
	// ReconfigID echoes the ?reconfig= filter (0 = unfiltered dump).
	ReconfigID uint64        `json:"reconfig_id,omitempty"`
	Events     []trace.Event `json:"events"`
	// Tree is the span forest assembled from Events (roots only when
	// filtered; omitted for the firehose dump to keep it cheap).
	Tree []*trace.Node `json:"tree,omitempty"`
}

// DebugEvents snapshots the flight recorder, optionally filtered to one
// reconfiguration's trace.
func (d *Daemon) DebugEvents(reconfigID uint64) EventsDump {
	dump := EventsDump{
		ReconfigID: reconfigID,
		Events:     d.tracer.Events(trace.Filter{TraceID: reconfigID}),
	}
	if reconfigID != 0 {
		dump.Tree = trace.Tree(dump.Events)
	}
	return dump
}

// Handler returns the daemon's HTTP surface:
//
//	GET /metrics       — Prometheus text exposition of the daemon's metrics
//	GET /status        — Status as JSON
//	GET /healthz       — 200 while healthy and repaired, 503 while degraded
//	GET /debug/events  — flight-recorder dump; ?reconfig=<id> filters to one
//	                     trace and includes its assembled span tree (404
//	                     for unknown reconfig IDs)
//	GET /debug/trace   — last-N span trees (?n=, default 5), oldest first
//
// The topology intelligence API (/api/paths, /api/critical, /api/whatif,
// /api/history — see package topoapi) is mounted on the same mux.
//
// When a chaos injector is configured, /debug/chaos additionally serves
// its snapshot (GET) and accepts fault injections (POST) — see
// chaos.Injector.Handler — and POST /debug/chaos/cycle drives one full
// failure-recovery cycle synchronously, recording it in the history
// lake.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	jsonError := func(w http.ResponseWriter, code int, msg string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = d.reg.WriteText(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := d.Status()
		if st.Healthy && !st.NeedRepair {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("degraded\n"))
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		var id uint64
		if v := r.URL.Query().Get("reconfig"); v != "" {
			parsed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad reconfig id: "+err.Error(), http.StatusBadRequest)
				return
			}
			id = parsed
		}
		dump := d.DebugEvents(id)
		if id != 0 && len(dump.Events) == 0 {
			jsonError(w, http.StatusNotFound, "no events for reconfig "+strconv.FormatUint(id, 10))
			return
		}
		writeJSON(w, dump)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 5
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		trees := d.tracer.Traces(n)
		if trees == nil {
			trees = []*trace.Node{}
		}
		writeJSON(w, trees)
	})
	if d.cfg.Chaos != nil {
		mux.Handle("/debug/chaos", d.cfg.Chaos.Handler())
		mux.HandleFunc("/debug/chaos/cycle", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				jsonError(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			q := r.URL.Query()
			d.mu.Lock()
			m := d.fab.Deployment().Region.Map
			d.mu.Unlock()
			var sc chaos.Scenario
			var err error
			if spec := q.Get("scenario"); spec != "" {
				sc, err = chaos.ParseScenario(m, spec)
			} else {
				sc, err = chaos.ScenarioFromQuery(m, q)
			}
			if err != nil {
				jsonError(w, http.StatusBadRequest, err.Error())
				return
			}
			timeout := 30 * time.Second
			if v := q.Get("timeout"); v != "" {
				parsed, err := time.ParseDuration(v)
				if err != nil || parsed <= 0 {
					jsonError(w, http.StatusBadRequest, "bad timeout")
					return
				}
				timeout = parsed
			}
			// Hold the settle phase open until a reconfiguration has
			// committed after the fault was injected: LastReconfigID only
			// moves on a real allocation change, so the recorded cycle's
			// diff is never empty by accident of timing.
			startID := d.Status().LastReconfigID
			res, err := d.cfg.Chaos.RunCycle(chaos.CycleConfig{
				Scenario:    sc,
				CP:          d,
				Timeout:     timeout,
				History:     d.cfg.History,
				Books:       d.HistoryBooks,
				SettleExtra: func() bool { return d.Status().LastReconfigID != startID },
			})
			if err != nil {
				jsonError(w, http.StatusInternalServerError, err.Error())
				return
			}
			writeJSON(w, res)
		})
	}
	topoapi.New(topoapi.Config{State: d.topoSnapshot, Lake: d.cfg.History}).Register(mux)
	return mux
}
