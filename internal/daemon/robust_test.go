package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"iris/internal/history"
	"iris/internal/telemetry"
	"iris/internal/traffic"
)

// TestRobustModeSkipsAndEscapes is the robust-policy end-to-end scenario:
// the first shift commits an envelope, a second shift inside it is
// absorbed with zero device operations, and a third far outside forces an
// envelope-escape re-plan recorded in the history lake.
func TestRobustModeSkipsAndEscapes(t *testing.T) {
	rig := toyRig(t, nil)
	reg := telemetry.NewRegistry()
	lake, err := history.New(history.Config{Capacity: 64, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),  // first plan: envelope = 1.15 × this
		toyMatrix(rig, 65, 48),  // within 69 / 51.75 → absorbed
		toyMatrix(rig, 200, 45), // 200 > 69 → escape, re-plan
	)
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       feed,
		Registry:   reg,
		Logger:     testLogger(t),
		History:    lake,
		// Forecast 0 keeps the envelope a pure function of the replayed
		// window, so every assertion below is deterministic.
		Robust: &RobustPolicy{Window: 4, Headroom: 1.15, Forecast: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.ProbeOnce()

	// Shift 1: no envelope yet → full robust plan, one reconfiguration.
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after first robust plan: %v", err)
	}
	if got := counterValue(t, reg, "iris_reconfig_total"); got != 1 {
		t.Fatalf("iris_reconfig_total = %v after first shift, want 1", got)
	}
	st := d.Status()
	if st.Robust == nil || !st.Robust.Enabled {
		t.Fatalf("status missing robust block: %+v", st.Robust)
	}
	if st.Robust.Matrices != 1 || !st.Robust.AllAdmissible {
		t.Errorf("robust status after first plan = %+v, want matrices=1 all_admissible", st.Robust)
	}
	if st.Robust.Overprovision < 1 || st.Robust.Headroom < 1 {
		t.Errorf("robust status ratios = %+v, want ≥ 1", st.Robust)
	}

	// Shift 2: inside the committed envelope → absorbed, no device ops, no
	// history record.
	d.Step()
	if got := counterValue(t, reg, "iris_reconfig_total"); got != 1 {
		t.Errorf("iris_reconfig_total = %v after contained shift, want still 1", got)
	}
	if got := counterValue(t, reg, "iris_robust_in_envelope_total"); got != 1 {
		t.Errorf("iris_robust_in_envelope_total = %v, want 1", got)
	}
	st = d.Status()
	if !st.Converged {
		t.Errorf("contained shift left daemon unconverged: %+v", st)
	}
	if st.Robust.InEnvelope != 1 || st.Robust.Escapes != 0 {
		t.Errorf("robust counters after contained shift = %+v, want in_envelope=1 escapes=0", st.Robust)
	}
	if st.Robust.Utilization <= 0 || st.Robust.Utilization > 1+1e-9 {
		t.Errorf("contained utilization = %v, want in (0, 1]", st.Robust.Utilization)
	}

	// Shift 3: escapes the envelope → re-plan, second reconfiguration,
	// history record with the envelope-escape trigger.
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after escape re-plan: %v", err)
	}
	if got := counterValue(t, reg, "iris_reconfig_total"); got != 2 {
		t.Errorf("iris_reconfig_total = %v after escape, want 2", got)
	}
	if got := counterValue(t, reg, "iris_robust_escapes_total"); got != 1 {
		t.Errorf("iris_robust_escapes_total = %v, want 1", got)
	}
	st = d.Status()
	if st.Robust.Escapes != 1 {
		t.Errorf("robust status escapes = %d, want 1", st.Robust.Escapes)
	}

	var escapeRecs int
	for _, rec := range lake.Records() {
		if rec.Trigger == history.TriggerEnvelopeEscape {
			escapeRecs++
		}
	}
	if escapeRecs != 1 {
		t.Errorf("history lake has %d envelope-escape records, want 1", escapeRecs)
	}

	// The envelope audit endpoint sees the committed envelope and reports
	// the live (post-escape, re-planned) matrix as contained.
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/api/whatif?audit=envelope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("envelope audit status = %d, want 200", res.StatusCode)
	}
	var audit struct {
		Envelope struct {
			Matrices int     `json:"matrices"`
			Headroom float64 `json:"headroom"`
			Total    float64 `json:"total"`
		} `json:"envelope"`
		Contained   bool    `json:"contained"`
		Utilization float64 `json:"utilization"`
	}
	if err := json.NewDecoder(res.Body).Decode(&audit); err != nil {
		t.Fatalf("decode envelope audit: %v", err)
	}
	if !audit.Contained {
		t.Errorf("freshly re-planned matrix not contained in its own envelope: %+v", audit)
	}
	if audit.Envelope.Matrices == 0 || audit.Envelope.Total <= 0 {
		t.Errorf("audit envelope block empty: %+v", audit)
	}
	if audit.Utilization <= 0 || audit.Utilization > 1+1e-9 {
		t.Errorf("audit utilization = %v, want in (0, 1]", audit.Utilization)
	}
}

// TestRobustDisabledSurface pins the default mode: no robust status block
// and no iris_robust_* series when no policy is armed.
func TestRobustDisabledSurface(t *testing.T) {
	rig := toyRig(t, nil)
	reg := telemetry.NewRegistry()
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(toyMatrix(rig, 60, 45)),
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	if st := d.Status(); st.Robust != nil {
		t.Errorf("robust status present without a policy: %+v", st.Robust)
	}
	if c := reg.LookupCounter("iris_robust_in_envelope_total"); c != nil {
		t.Error("iris_robust_in_envelope_total registered without a policy")
	}

	// And the audit endpoint declines cleanly.
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/api/whatif?audit=envelope")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("envelope audit without robust mode = %d, want 404", res.StatusCode)
	}
}
