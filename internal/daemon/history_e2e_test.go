package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/fabric"
	"iris/internal/graph"
	"iris/internal/history"
	"iris/internal/hose"
	"iris/internal/plan"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// historyRig is a chaos-armed toy region with a history lake, driven on a
// fake clock so the whole scenario is deterministic.
type historyRig struct {
	rig   *fabric.Rig
	d     *Daemon
	inj   *chaos.Injector
	lake  *history.Lake
	clock *fakeClock
}

// newHistoryRig brings up the toy region with a replay feed of the given
// (DC0-DC1, DC0-DC2) demand shifts.
func newHistoryRig(t *testing.T, shifts [][2]float64) *historyRig {
	t.Helper()
	devs := chaos.NewDeviceSet()
	rig := toyRig(t, func(cfg *fabric.BringUpConfig) { cfg.WrapDevice = devs.Wrap })

	clock := newFakeClock()
	tracer := trace.New(16384)
	reg := telemetry.NewRegistry()
	lake, err := history.New(history.Config{Capacity: 64, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.NewInjector(chaos.InjectorConfig{
		Devices:  devs,
		Fab:      rig.Fab,
		Tracer:   tracer,
		Registry: reg,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	mats := make([]*traffic.Matrix, len(shifts))
	for i, s := range shifts {
		mats[i] = toyMatrix(rig, s[0], s[1])
	}
	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             traffic.NewReplay(mats...),
		FailureThreshold: 2,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
		Seed:             1,
		Registry:         reg,
		Now:              clock.Now,
		Logger:           testLogger(t),
		Tracer:           tracer,
		Chaos:            inj,
		History:          lake,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &historyRig{rig: rig, d: d, inj: inj, lake: lake, clock: clock}
}

// runCycle drives one full chaos cycle with the same history wiring the
// /debug/chaos/cycle endpoint uses, pumping the daemon on the fake clock.
func (h *historyRig) runCycle(t *testing.T, sc chaos.Scenario) *chaos.CycleResult {
	t.Helper()
	startID := h.d.Status().LastReconfigID
	pump := func() {
		h.clock.advance(120 * time.Millisecond)
		h.d.ProbeOnce()
		st := h.d.Status()
		if st.Healthy && !st.NeedRepair {
			h.d.Step()
		}
	}
	res, err := h.inj.RunCycle(chaos.CycleConfig{
		Scenario:    sc,
		CP:          h.d,
		Pump:        pump,
		Timeout:     20 * time.Second,
		History:     h.lake,
		Books:       h.d.HistoryBooks,
		SettleExtra: func() bool { return h.d.Status().LastReconfigID != startID },
	})
	if err != nil {
		t.Fatalf("chaos cycle: %v", err)
	}
	return res
}

// apiGet decodes a JSON endpoint into out, failing on any non-200.
func apiGet(t *testing.T, srv *httptest.Server, path string, out any) {
	t.Helper()
	res, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET %s = %d, want 200", path, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

func emptyAlloc() core.Allocation {
	return core.Allocation{Fibers: map[hose.Pair]int{}, Residual: map[hose.Pair]int{}}
}

// TestHistoryTimeTravel is the PR's acceptance scenario: drive traffic
// shifts and one chaos cycle through the daemon, then reconstruct the
// full reconfiguration sequence from /api/history alone — IDs, ordering,
// and alloc diffs composing, record by record, to the live committed
// allocation — and check /api/critical flags the duct whose exhaustive
// ≤k cut audit strands the most hose demand.
func TestHistoryTimeTravel(t *testing.T) {
	// Three pre-cycle shifts; the rest feed the chaos cycle's settle
	// phase and the post-cycle drain.
	shifts := [][2]float64{
		{60, 45}, {20, 95}, {80, 10},
		{30, 70}, {55, 25}, {65, 35}, {45, 60}, {70, 20},
	}
	const prelude = 3
	h := newHistoryRig(t, shifts)

	h.d.ProbeOnce()
	for i := 0; i < prelude; i++ {
		if done := h.d.Step(); done {
			t.Fatalf("feed exhausted after %d shifts", i)
		}
	}
	if got := h.lake.Len(); got != prelude {
		t.Fatalf("lake has %d records after %d shifts, want one per shift", got, prelude)
	}

	cycle := h.runCycle(t, chaos.Cut(hubDuctID(t, h.rig.Dep.Region.Map)))
	for !h.d.Step() {
	}

	srv := httptest.NewServer(h.d.Handler())
	defer srv.Close()

	// 1. The listing: every record, Seq-ordered, triggers as driven.
	var listing struct {
		Total   int               `json:"total"`
		Records []history.Summary `json:"records"`
	}
	apiGet(t, srv, "/api/history", &listing)
	if listing.Total != len(listing.Records) || listing.Total < prelude+1 {
		t.Fatalf("listing total=%d records=%d, want ≥%d", listing.Total, len(listing.Records), prelude+1)
	}
	chaosRecs := 0
	for i, s := range listing.Records {
		if i > 0 && s.Seq <= listing.Records[i-1].Seq {
			t.Fatalf("records not Seq-ordered at %d", i)
		}
		switch s.Trigger {
		case history.TriggerChaos:
			chaosRecs++
			if s.ReconfigID != cycle.TraceID {
				t.Errorf("chaos record id=%d, want cycle trace %d", s.ReconfigID, cycle.TraceID)
			}
			if s.PairsChanged == 0 || s.DuctsTouched == 0 {
				t.Errorf("chaos record has empty alloc diff: %+v", s)
			}
			if !s.PreHealth.Healthy || !s.PostHealth.Converged {
				t.Errorf("chaos record health bracket wrong: %+v", s)
			}
		case history.TriggerConverge:
			if i < prelude && s.Spans == 0 {
				t.Errorf("converge record %d captured no spans", s.ReconfigID)
			}
		}
	}
	if chaosRecs != 1 {
		t.Fatalf("listing has %d chaos-cycle records, want 1", chaosRecs)
	}

	// 2. Time travel: fetch each record's detail and compose the diffs in
	// Seq order from an empty allocation; the result must equal the live
	// committed allocation exactly.
	live, haveLive := h.d.CommittedAlloc()
	if !haveLive {
		t.Fatal("daemon has no committed allocation")
	}
	type detailResp struct {
		Record history.Record `json:"record"`
		Tree   []*trace.Node  `json:"tree"`
	}
	replayed := emptyAlloc()
	for _, s := range listing.Records {
		var detail detailResp
		apiGet(t, srv, "/api/history/"+strconv.FormatUint(s.ReconfigID, 10), &detail)
		if detail.Record.Seq != s.Seq {
			t.Fatalf("record %d: detail seq %d != listing seq %d", s.ReconfigID, detail.Record.Seq, s.Seq)
		}
		if len(detail.Record.Spans) > 0 && len(detail.Tree) == 0 {
			t.Fatalf("record %d has spans but no assembled tree", s.ReconfigID)
		}
		replayed = core.ApplyDeltas(replayed, detail.Record.Pairs)
	}
	if !replayed.Equal(live) {
		t.Fatalf("history replay diverged from live allocation:\nreplayed %+v\nlive     %+v", replayed, live)
	}

	// 3. The diff endpoint composes the same way: applying the first→last
	// net change to the first record's post state must land on the live
	// allocation.
	first, last := listing.Records[0], listing.Records[len(listing.Records)-1]
	var diff struct {
		Reconfigs []uint64         `json:"reconfigs"`
		Pairs     []core.PairDelta `json:"pairs"`
		Ducts     []core.DuctDelta `json:"ducts"`
	}
	apiGet(t, srv, "/api/history/diff?from="+strconv.FormatUint(first.ReconfigID, 10)+
		"&to="+strconv.FormatUint(last.ReconfigID, 10), &diff)
	if len(diff.Reconfigs) != listing.Total-1 {
		t.Fatalf("diff spans %d reconfigs, want %d", len(diff.Reconfigs), listing.Total-1)
	}
	var firstDetail detailResp
	apiGet(t, srv, "/api/history/"+strconv.FormatUint(first.ReconfigID, 10), &firstDetail)
	afterFirst := core.ApplyDeltas(emptyAlloc(), firstDetail.Record.Pairs)
	if !core.ApplyDeltas(afterFirst, diff.Pairs).Equal(live) {
		t.Fatal("diff endpoint's net pairs do not bridge the first record to the live allocation")
	}

	// 4. /api/critical's top duct is the one whose exhaustive ≤k cut audit
	// strands the most hose demand, computed independently here with the
	// same demand snapshot the server uses.
	var crit struct {
		K     int `json:"k"`
		Ducts []struct {
			Duct           int     `json:"duct"`
			Bridge         bool    `json:"bridge"`
			StrandedDemand float64 `json:"stranded_demand"`
			SoloStranded   float64 `json:"solo_stranded"`
		} `json:"ducts"`
	}
	apiGet(t, srv, "/api/critical", &crit)
	m := h.rig.Dep.Region.Map
	base := plan.BaseGraph(m)
	if len(crit.Ducts) != base.NumEdges() {
		t.Fatalf("critical lists %d ducts, want %d", len(crit.Ducts), base.NumEdges())
	}

	demand := h.d.topoSnapshot().Demand
	ids := make([]int, 0, base.NumEdges())
	for _, e := range base.Edges() {
		ids = append(ids, e.ID)
	}
	worst := make(map[int]float64)
	solo := make(map[int]float64)
	graph.FailureScenarios(ids, crit.K, func(cut map[int]bool) {
		if len(cut) == 0 {
			return
		}
		comps := base.WithoutEdges(cut).Components()
		stranded := 0.0
		for p, dm := range demand {
			if comps[p.A] != comps[p.B] {
				stranded += dm
			}
		}
		for id := range cut {
			if stranded > worst[id] {
				worst[id] = stranded
			}
			if len(cut) == 1 {
				solo[id] = stranded
			}
		}
	})
	wantStranded, wantSolo := 0.0, 0.0
	for _, id := range ids {
		if worst[id] > wantStranded || (worst[id] == wantStranded && solo[id] > wantSolo) {
			wantStranded, wantSolo = worst[id], solo[id]
		}
	}
	top := crit.Ducts[0]
	if top.StrandedDemand != wantStranded || top.SoloStranded != wantSolo {
		t.Fatalf("critical top duct %d strands (%v, solo %v); independent audit says (%v, solo %v)",
			top.Duct, top.StrandedDemand, top.SoloStranded, wantStranded, wantSolo)
	}
	if worst[top.Duct] != wantStranded || solo[top.Duct] != wantSolo {
		t.Fatalf("top duct %d does not achieve the worst audit outcome (%v, solo %v)",
			top.Duct, wantStranded, wantSolo)
	}
	if !top.Bridge {
		t.Error("toy-region top duct not flagged as a bridge (every toy duct is one)")
	}

	// 5. /api/paths serves k duct paths with per-hop occupancy for a live
	// DC pair.
	dcs := m.DCs()
	var paths struct {
		Paths []struct {
			Nodes []int   `json:"nodes"`
			KM    float64 `json:"km"`
			Hops  []struct {
				Duct             int `json:"duct"`
				ProvisionedPairs int `json:"provisioned_pairs"`
			} `json:"hops"`
		} `json:"paths"`
	}
	apiGet(t, srv, "/api/paths?from="+strconv.Itoa(dcs[0])+"&to="+strconv.Itoa(dcs[2])+"&k=3", &paths)
	if len(paths.Paths) == 0 {
		t.Fatal("no paths between live DCs")
	}
	for i, p := range paths.Paths {
		if len(p.Hops) != len(p.Nodes)-1 {
			t.Fatalf("path %d: %d hops for %d nodes", i, len(p.Hops), len(p.Nodes))
		}
		if i > 0 && p.KM < paths.Paths[i-1].KM {
			t.Fatalf("paths not sorted by length at %d", i)
		}
		for j, hop := range p.Hops {
			if hop.ProvisionedPairs <= 0 {
				t.Fatalf("path %d hop %d: duct %d has no provisioned fiber", i, j, hop.Duct)
			}
		}
	}

	// 6. /api/whatif on the healed hub cut: admissible (surviving pairs
	// still fit the fiber) but not fully survived on the tree-shaped toy.
	var whatif struct {
		Result struct {
			Admissible bool `json:"admissible"`
			Survives   bool `json:"survives"`
		} `json:"result"`
		StrandedDemand float64 `json:"stranded_demand"`
	}
	apiGet(t, srv, "/api/whatif?scenario=cut:"+strconv.Itoa(hubDuctID(t, m)), &whatif)
	if !whatif.Result.Admissible {
		t.Fatal("whatif: hub cut should leave surviving pairs admissible")
	}
	if whatif.Result.Survives {
		t.Fatal("whatif: hub cut of the tree-shaped toy cannot fully survive")
	}
}

// TestRepairEmitsHistoryRecord checks a repair pass lands in the lake as
// a TriggerRepair record with an empty alloc diff — it restores intent
// rather than changing it.
func TestRepairEmitsHistoryRecord(t *testing.T) {
	h := newHistoryRig(t, [][2]float64{{60, 45}})
	h.d.ProbeOnce()
	h.d.Step()
	before := h.lake.Len()

	if err := h.d.repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}

	recs := h.lake.Records()
	if len(recs) != before+1 {
		t.Fatalf("lake has %d records after repair, want %d", len(recs), before+1)
	}
	rec := recs[len(recs)-1]
	if rec.Trigger != history.TriggerRepair {
		t.Fatalf("last record trigger = %q, want %q", rec.Trigger, history.TriggerRepair)
	}
	if len(rec.Pairs) != 0 || len(rec.Ducts) != 0 {
		t.Errorf("repair record carries an alloc diff: %+v", rec)
	}
	if len(rec.Spans) == 0 {
		t.Error("repair record captured no spans")
	}
}

// TestHistoryPersistenceAcrossRestart drives shifts through a daemon
// persisting history, rebuilds the lake from the file, and checks the
// replayed records still compose to the committed allocation.
func TestHistoryPersistenceAcrossRestart(t *testing.T) {
	path := t.TempDir() + "/history.jsonl"
	rig := toyRig(t, nil)
	mats := []*traffic.Matrix{
		toyMatrix(rig, 60, 45), toyMatrix(rig, 20, 95), toyMatrix(rig, 80, 10),
	}
	lake, err := history.New(history.Config{Capacity: 32, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(mats...),
		Logger:     testLogger(t),
		History:    lake,
	})
	if err != nil {
		t.Fatal(err)
	}
	for range mats {
		d.Step()
	}
	live, ok := d.CommittedAlloc()
	if !ok {
		t.Fatal("no committed allocation")
	}
	if err := lake.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := history.New(history.Config{Capacity: 32, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recs := reopened.Records()
	if len(recs) != len(mats) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(mats))
	}
	replayed := emptyAlloc()
	for _, rec := range recs {
		replayed = core.ApplyDeltas(replayed, rec.Pairs)
	}
	if !replayed.Equal(live) {
		t.Fatal("records replayed from disk do not compose to the committed allocation")
	}
}
