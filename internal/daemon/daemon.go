// Package daemon implements irisd, the long-running regional control
// plane the paper's §5 controller implies but the one-shot irisctl demo
// does not provide. The daemon owns a materialised fabric and its
// controller and keeps the region converged as demand shifts:
//
//   - it ingests a traffic-matrix feed (internal/traffic.Source, stepping
//     like the §6.3 change process),
//   - computes the incremental circuit change each shift requires,
//   - executes it as a §5.2 drained reconfiguration
//     (drain → switch → amps → retune → undrain) against the device agents,
//   - audits device state against intent after every change,
//   - supervises device health with periodic probes, per-device
//     exponential backoff with jitter, and a circuit breaker that
//     quarantines flapping devices,
//   - and degrades to the last-known-good allocation instead of crashing
//     when a device fails mid-reconfiguration, re-converging through a
//     reconciliation pass once the device heals.
//
// Reconfigurations are transactional against the fabric bookkeeping: each
// change is compiled on a clone of the fabric and the clone is committed
// only after the devices accepted every phase, so a failure leaves the
// daemon holding the last-known-good intent.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"iris/internal/chaos"
	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/fabric"
	"iris/internal/flowsim"
	"iris/internal/history"
	"iris/internal/robust"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// Config parameterises a Daemon. Fab, Controller and Feed are required;
// zero durations and counts select the defaults.
type Config struct {
	Fab        *fabric.Fabric
	Controller *control.Controller
	Feed       traffic.Source

	// Interval is the control-loop cadence: how often the daemon takes the
	// next traffic matrix and converges on it (default 2s).
	Interval time.Duration
	// MaxBatch bounds how many queued traffic shifts one Step coalesces
	// into a single convergence (default 1, no coalescing). When the feed
	// outpaces the loop — a burst of ticks between intervals — the daemon
	// folds the burst into one incremental solve against the newest matrix
	// instead of reconfiguring once per tick; skipped intermediates are
	// counted in iris_daemon_coalesced_shifts_total.
	MaxBatch int
	// ProbeInterval is the device health-probe cadence (default 1s).
	ProbeInterval time.Duration
	// FailureThreshold is the consecutive failures (probe or attributed
	// reconfiguration errors) that trip a device's breaker (default 3).
	FailureThreshold int
	// BackoffBase and BackoffMax bound the breaker's exponential cooldown
	// (defaults 500ms and 30s). Each re-trip doubles the cooldown; the
	// actual quarantine is jittered in [cooldown/2, cooldown].
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed seeds the jitter source (deterministic tests).
	Seed int64
	// Registry receives the daemon's metrics (a fresh one if nil).
	Registry *telemetry.Registry
	// Now is the clock (time.Now if nil; tests inject a fake).
	Now func() time.Time
	// Logger receives structured logs (silent if nil). The daemon tags
	// every record with component=daemon and reconfiguration-scoped
	// records with reconfig_id.
	Logger *slog.Logger
	// Tracer is the flight recorder every reconfiguration, audit and
	// breaker transition is journaled into (nil disables tracing; the
	// /debug endpoints then serve empty results).
	Tracer *trace.Tracer
	// Chaos, when set, exposes the fault injector on the daemon's HTTP
	// surface (/debug/chaos) and injection state on /status. The injector
	// must wrap the same fabric's devices the daemon supervises.
	Chaos *chaos.Injector
	// FlowMonitor, when set, simulates the flow-level cost of every
	// drained reconfiguration and repair cycle against the committed
	// allocation, publishing iris_flowsim_* metrics and /status's
	// flow_impact. Register it on the same Registry as the daemon's
	// metrics so one scrape carries both.
	FlowMonitor *flowsim.Monitor
	// History, when set, receives one record per committed convergence and
	// repair pass — the reconfiguration history lake served on
	// /api/history. Chaos cycles append their own records through
	// chaos.CycleConfig.History.
	History *history.Lake
	// Robust, when set, switches the converge loop from per-shift deltas
	// to METTEOR-style robust planning: one envelope allocation covers a
	// window of matrices and reconfiguration is skipped while the live
	// demand stays inside it (see internal/robust).
	Robust *RobustPolicy
}

// Daemon is the regional control loop. Construct with New, drive with Run
// (or Step/ProbeOnce directly in tests), observe via Handler/Status.
type Daemon struct {
	cfg    Config
	ctl    *control.Controller
	feed   traffic.Source
	reg    *telemetry.Registry
	now    func() time.Time
	log    *slog.Logger
	tracer *trace.Tracer

	// fallbackID hands out reconfig IDs when no tracer is configured (a
	// live tracer's ID space is used instead, so span and trace IDs never
	// collide between the daemon and other instrumented subsystems).
	fallbackID atomic.Uint64

	// robustWin captures the recent matrices a robust envelope is solved
	// over (nil without a RobustPolicy). Only the converge path touches
	// it, which Step serialises.
	robustWin *traffic.Window

	// mu guards the control-loop state below. The fabric pointed to by fab
	// is never mutated while installed — changes are compiled on clones —
	// so holding mu only for pointer reads/swaps keeps /status responsive
	// during slow reconfigurations.
	mu      sync.Mutex
	fab     *fabric.Fabric
	lkg     core.Allocation // last-known-good allocation
	haveLKG bool
	// allocState is the incremental allocator's retained books; lastMatrix
	// is the demand those books satisfy. converge diffs each new matrix
	// against lastMatrix and hands core.AllocateDelta the sparse update,
	// re-solving the whole region only on the first convergence, after a
	// deployment swap, or when the delta cascade trips the fallback.
	allocState  *core.AllocState
	lastMatrix  *traffic.Matrix
	pending     *traffic.Matrix // shift taken from the feed, not yet applied
	needRepair  bool            // devices may have diverged from intent
	steps       int
	lastErr     string
	lastAuditAt time.Time
	lastAuditOK bool
	lastGoodAt  time.Time // last successful convergence
	// lastReconfigID is the trace ID of the last reconfiguration whose
	// change the devices accepted — the handle for
	// /debug/events?reconfig=<id>.
	lastReconfigID uint64
	// robustRes is the committed envelope solve in robust mode (nil until
	// the first robust plan, and always nil otherwise); robustInEnvN /
	// robustEscapeN mirror the iris_robust_* counters for /status.
	robustRes     *robust.Result
	robustInEnvN  uint64
	robustEscapeN uint64

	// hmu guards per-device breaker state and the jitter source.
	hmu    sync.Mutex
	health map[string]*deviceHealth
	rng    *rand.Rand

	m metricsSet
}

type metricsSet struct {
	steps             *telemetry.Counter
	skips             *telemetry.Counter
	reconfigs         *telemetry.Counter
	reconfigFailures  *telemetry.Counter
	reconfigOps       *telemetry.Counter
	reconfigSeconds   *telemetry.Histogram
	phaseSeconds      *telemetry.HistogramVec
	allocFailures     *telemetry.Counter
	allocIncremental  *telemetry.Counter
	allocFallback     *telemetry.Counter
	allocPairs        *telemetry.Histogram
	coalesced         *telemetry.Counter
	audits            *telemetry.Counter
	auditFailures     *telemetry.Counter
	reconciles        *telemetry.Counter
	reconcileFailures *telemetry.Counter
	probes            *telemetry.Counter
	probeFailures     *telemetry.CounterVec
	breakerTrips      *telemetry.CounterVec
	breakerState      *telemetry.GaugeVec
	staleness         *telemetry.Gauge
	circuits          *telemetry.Gauge
	planStageSeconds  *telemetry.HistogramVec
	// Robust-mode series, registered only when a RobustPolicy is armed so
	// non-robust scrapes stay clean.
	robustInEnv    *telemetry.Counter
	robustEscapes  *telemetry.Counter
	robustHeadroom *telemetry.Gauge
	robustOverprov *telemetry.Gauge
}

// latencyBuckets cover sub-millisecond emulated phases up to multi-second
// hardware settling.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// New validates the configuration and prepares a daemon. The first
// convergence happens on the first Step (or Run tick).
func New(cfg Config) (*Daemon, error) {
	if cfg.Fab == nil || cfg.Controller == nil || cfg.Feed == nil {
		return nil, fmt.Errorf("daemon: Fab, Controller and Feed are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 500 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	if cfg.Robust != nil {
		pol := cfg.Robust.withDefaults()
		cfg.Robust = &pol
	}
	d := &Daemon{
		cfg:    cfg,
		ctl:    cfg.Controller,
		feed:   cfg.Feed,
		reg:    cfg.Registry,
		now:    cfg.Now,
		log:    cfg.Logger,
		tracer: cfg.Tracer,
		fab:    cfg.Fab,
	}
	if d.reg == nil {
		d.reg = telemetry.NewRegistry()
	}
	if d.now == nil {
		d.now = time.Now
	}
	if d.log == nil {
		d.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	d.log = d.log.With("component", "daemon")
	d.rng = rand.New(rand.NewSource(cfg.Seed))
	d.health = make(map[string]*deviceHealth)
	if cfg.Robust != nil {
		d.robustWin = traffic.NewWindow(cfg.Robust.Window)
	}
	d.initMetrics()
	for _, name := range d.ctl.Devices() {
		d.health[name] = &deviceHealth{}
		d.m.breakerState.With(name).Set(0)
	}
	// The bring-up plan's Algorithm-1 stage timings are the region's
	// planning cost; exposing them beside the reconfiguration phases lets
	// one scrape correlate plan and control-plane latency.
	if pl := cfg.Fab.Deployment().Plan; pl != nil {
		for _, st := range pl.Stages {
			d.m.planStageSeconds.With(st.Stage).Observe(st.Duration.Seconds())
		}
	}
	return d, nil
}

func (d *Daemon) initMetrics() {
	r := d.reg
	d.m.steps = r.Counter("iris_daemon_steps_total", "Control-loop iterations.")
	d.m.skips = r.Counter("iris_daemon_skipped_steps_total", "Iterations skipped because a breaker was open (region held on last-known-good allocation).")
	d.m.reconfigs = r.Counter("iris_reconfig_total", "Successful drained reconfigurations.")
	d.m.reconfigFailures = r.Counter("iris_reconfig_failures_total", "Reconfigurations aborted by a device failure.")
	d.m.reconfigOps = r.Counter("iris_reconfig_ops_total", "Device operations executed by successful reconfigurations.")
	d.m.reconfigSeconds = r.Histogram("iris_reconfig_seconds", "End-to-end reconfiguration latency.", latencyBuckets)
	d.m.phaseSeconds = r.HistogramVec("iris_reconfig_phase_seconds", "Per-phase reconfiguration latency (drain, switch, amps, retune, fill, undrain).", "phase", latencyBuckets)
	d.m.allocFailures = r.Counter("iris_allocation_failures_total", "Traffic matrices rejected as unallocatable.")
	d.m.allocIncremental = r.Counter("iris_alloc_incremental_total", "Convergences solved by the incremental delta allocator.")
	d.m.allocFallback = r.Counter("iris_alloc_fallback_total", "Convergences solved from scratch (first solve, deployment swap, or delta-cascade fallback).")
	d.m.allocPairs = r.Histogram("iris_alloc_pairs_resolved", "DC pairs whose circuits were recomputed per convergence.", []float64{1, 2, 5, 10, 20, 50, 100, 250, 500})
	d.m.coalesced = r.Counter("iris_daemon_coalesced_shifts_total", "Intermediate traffic shifts skipped by batched convergence (MaxBatch).")
	d.m.audits = r.Counter("iris_audit_total", "Device-state audits executed.")
	d.m.auditFailures = r.Counter("iris_audit_failures_total", "Audits that found devices diverged from intent.")
	d.m.reconciles = r.Counter("iris_reconcile_total", "Reconciliation repairs executed after partial failures.")
	d.m.reconcileFailures = r.Counter("iris_reconcile_failures_total", "Reconciliation repairs that themselves failed.")
	d.m.probes = r.Counter("iris_probe_total", "Device health probes sent.")
	d.m.probeFailures = r.CounterVec("iris_probe_failures_total", "Failed device health probes.", "device")
	d.m.breakerTrips = r.CounterVec("iris_breaker_trips_total", "Circuit-breaker trips.", "device")
	d.m.breakerState = r.GaugeVec("iris_breaker_state", "Breaker state per device: 0 closed, 1 half-open, 2 open.", "device")
	d.m.staleness = r.Gauge("iris_allocation_staleness_seconds", "Age of the last successful convergence.")
	d.m.circuits = r.Gauge("iris_circuits_active", "Active circuits (full + residual).")
	d.m.planStageSeconds = r.HistogramVec("iris_plan_stage_seconds", "Per-stage planner latency (route, amps, cutthrough, provision, total) from Algorithm 1.", "stage", latencyBuckets)
	if d.cfg.Robust != nil {
		d.m.robustInEnv = r.Counter("iris_robust_in_envelope_total", "Traffic shifts absorbed by the committed envelope (reconfiguration skipped).")
		d.m.robustEscapes = r.Counter("iris_robust_escapes_total", "Traffic shifts that escaped the committed envelope and forced a re-plan.")
		d.m.robustHeadroom = r.Gauge("iris_robust_headroom_ratio", "Headroom factor the committed envelope was allocated at.")
		d.m.robustOverprov = r.Gauge("iris_robust_overprovision_ratio", "Provisioned wavelengths over the envelope window's mean demand.")
	}
}

// Registry returns the daemon's metrics registry.
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// Run drives the control loop until ctx is cancelled or the traffic feed
// is exhausted. Cancellation is graceful: an in-flight reconfiguration
// finishes its drained sequence before Run returns, so devices are never
// abandoned mid-phase.
func (d *Daemon) Run(ctx context.Context) error {
	stepTick := time.NewTicker(d.cfg.Interval)
	defer stepTick.Stop()
	probeTick := time.NewTicker(d.cfg.ProbeInterval)
	defer probeTick.Stop()

	// Converge on the feed's first matrix immediately.
	d.ProbeOnce()
	if d.Step() {
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			d.log.Info("shutdown: control loop drained")
			return nil
		case <-stepTick.C:
			if d.Step() {
				d.log.Info("traffic feed exhausted; exiting")
				return nil
			}
		case <-probeTick.C:
			d.ProbeOnce()
		}
	}
}

// Step runs one control-loop iteration: repair if needed, take the next
// traffic shift, converge on it. It returns true when the feed is
// exhausted and the loop should exit. Run calls it on the interval; tests
// call it directly for determinism.
func (d *Daemon) Step() (done bool) {
	d.m.steps.Inc()
	d.mu.Lock()
	d.steps++
	d.mu.Unlock()
	defer d.updateStaleness()

	if !d.Healthy() {
		d.m.skips.Inc()
		d.setErr("degraded: breaker open, holding last-known-good allocation")
		return false
	}
	if d.repairNeeded() {
		if err := d.repair(); err != nil {
			d.setErr(err.Error())
			return false
		}
	}

	d.mu.Lock()
	pending := d.pending
	d.mu.Unlock()
	if pending == nil {
		m, ok := d.feed.Next()
		if !ok {
			return true
		}
		pending = m
	}
	// Coalesce a burst: fold up to MaxBatch queued shifts into one
	// convergence on the newest matrix. The incremental allocator sees the
	// merged delta, so intermediates cost nothing but this drain.
	for i := 1; i < d.cfg.MaxBatch; i++ {
		m, ok := d.feed.Next()
		if !ok {
			break
		}
		d.m.coalesced.Inc()
		pending = m
	}
	d.mu.Lock()
	d.pending = pending
	d.mu.Unlock()
	if err := d.converge(pending); err != nil {
		d.setErr(err.Error())
		d.log.Warn("step failed", "err", err)
		return false
	}
	d.setErr("")
	return false
}

// nextTraceID allocates a reconfiguration (or repair) trace ID. With a
// live tracer the tracer's ID space is used so trace IDs never collide
// with other instrumented subsystems sharing the recorder; without one, a
// private counter keeps /status's reconfig IDs meaningful.
func (d *Daemon) nextTraceID() uint64 {
	if id := d.tracer.NextID(); id != 0 {
		return id
	}
	return d.fallbackID.Add(1)
}

// converge allocates circuits for the matrix and executes the change that
// moves the devices there, transactionally against a fabric clone. Every
// device reconfiguration gets a reconfig ID: the root span of a trace
// that is threaded through the controller's phases, the closing audit,
// and any breaker penalty the failure attribution produces.
//
// Allocation is incremental: the daemon diffs the matrix against the one
// its retained AllocState satisfies and re-solves only the changed pairs.
// A from-scratch solve runs on the first convergence, after the fabric's
// deployment is swapped out from under the state, or when the delta
// cascade trips core's fallback threshold. If the devices reject the
// change, the delta is rolled back so the books keep matching the
// last-known-good intent the repair pass restores.
func (d *Daemon) converge(tm *traffic.Matrix) error {
	if d.cfg.Robust != nil {
		return d.convergeRobust(tm)
	}
	d.mu.Lock()
	fab, lkg, haveLKG := d.fab, d.lkg, d.haveLKG
	st, last := d.allocState, d.lastMatrix
	d.mu.Unlock()

	dep := fab.Deployment()
	var (
		undo  core.Undo
		stats core.DeltaStats
	)
	if st != nil && last != nil && st.Deployment() == dep {
		u, s, err := dep.AllocateDelta(st, traffic.DiffMatrices(last, tm))
		if err != nil {
			// The demand is infeasible for the planned region: drop the
			// shift and keep serving the last-known-good allocation. An
			// infeasible delta leaves the books untouched.
			d.m.allocFailures.Inc()
			d.dropPending()
			return fmt.Errorf("allocate: %w", err)
		}
		undo, stats = u, s
	} else {
		ns, err := dep.AllocateState(tm)
		if err != nil {
			d.m.allocFailures.Inc()
			d.dropPending()
			return fmt.Errorf("allocate: %w", err)
		}
		st = ns
		stats = core.DeltaStats{FallbackReason: "full solve", PairsResolved: len(dep.Plan.Paths)}
	}
	if stats.Incremental {
		d.m.allocIncremental.Inc()
	} else {
		d.m.allocFallback.Inc()
	}
	d.m.allocPairs.Observe(float64(stats.PairsResolved))

	// Snapshot decouples the published allocation from the live books,
	// which the next delta mutates in place.
	alloc := st.Snapshot()
	if haveLKG && alloc.Equal(lkg) {
		d.mu.Lock()
		d.allocState, d.lastMatrix = st, tm
		d.pending = nil
		d.lastGoodAt = d.now()
		d.mu.Unlock()
		return nil
	}

	attr := fmt.Sprintf("incremental=%v pairs_resolved=%d pairs_revalidated=%d ducts_touched=%d",
		stats.Incremental, stats.PairsResolved, stats.PairsRevalidated, stats.DuctsTouched)
	return d.commitChange(tm, st, alloc, undo, history.TriggerConverge, attr, nil)
}

// commitChange executes the drained reconfiguration that moves the
// devices onto alloc, transactionally against a fabric clone, and records
// it in the history lake under trig. On success st becomes the retained
// allocator books and tm the demand they satisfy; undo reverts the books
// when the devices reject the change (pass the zero Undo for a freshly
// solved state — nothing to revert). compileAttr annotates the compile
// span; onCommit, when non-nil, runs inside the commit critical section
// so policy state (e.g. the robust envelope) swaps atomically with the
// fabric. It is the shared tail of the per-shift and robust converge
// paths.
func (d *Daemon) commitChange(tm *traffic.Matrix, st *core.AllocState, alloc core.Allocation,
	undo core.Undo, trig history.Trigger, compileAttr string, onCommit func()) error {
	d.mu.Lock()
	fab, lkg, haveLKG := d.fab, d.lkg, d.haveLKG
	last := d.lastMatrix
	d.mu.Unlock()
	dep := fab.Deployment()

	// Bracket the reconfiguration for the history lake: pre-state now, the
	// record once the commit (and its closing audit) has finished so its
	// span capture includes the whole trace.
	recordAt := d.now()
	var preHealth history.Health
	if d.cfg.History != nil {
		preHealth = d.healthBrief()
	}

	id := d.nextTraceID()
	log := d.log.With("reconfig_id", id)
	root := d.tracer.Start(id, "reconfig")
	ctx := trace.ContextWith(context.Background(), root)

	csp := root.Child("compile")
	csp.SetAttr(compileAttr)
	clone := fab.Clone()
	ch, err := clone.CompileTarget(alloc)
	if err != nil {
		undo.Rollback()
		csp.Fail(err)
		csp.Finish()
		root.Fail(err)
		root.Finish()
		d.dropPending()
		return fmt.Errorf("compile: %w", err)
	}
	csp.Finish()

	rep, err := d.ctl.Reconfigure(ctx, ch)
	if err != nil {
		// The devices may be partially reconfigured; keep the old fabric
		// as intent (the clone is discarded, the delta rolled back),
		// penalise the culprit, and reconcile once the region is healthy
		// again.
		undo.Rollback()
		d.m.reconfigFailures.Inc()
		d.penalizeIn(id, err)
		d.mu.Lock()
		d.needRepair = true
		d.mu.Unlock()
		root.Fail(err)
		root.Finish()
		log.Error("reconfiguration aborted", "err", err)
		return fmt.Errorf("reconfigure: %w", err)
	}
	ops := 0
	for _, p := range rep.Phases {
		d.m.phaseSeconds.With(p.Name).Observe(p.Duration.Seconds())
		ops += p.Ops
	}
	d.m.reconfigSeconds.Observe(rep.Total.Seconds())
	d.m.reconfigOps.Add(float64(ops))
	d.m.reconfigs.Inc()

	d.mu.Lock()
	d.fab = clone
	d.lkg = alloc
	d.haveLKG = true
	d.allocState, d.lastMatrix = st, tm
	d.pending = nil
	d.lastGoodAt = d.now()
	d.lastReconfigID = id
	if onCommit != nil {
		onCommit()
	}
	d.mu.Unlock()
	d.m.circuits.Set(float64(clone.CircuitCount()))
	log.Info("converged", "ops", ops, "total", rep.Total.Round(time.Microsecond))
	if d.cfg.FlowMonitor != nil && haveLKG {
		// Replay the committed change as capacity dips and measure the
		// flow slowdown it cost. The simulation journals under the same
		// reconfig trace, so /debug/events?reconfig=<id> shows the drain
		// and its flow impact side by side.
		fsp := root.Child("flowsim-impact")
		imp, ferr := d.cfg.FlowMonitor.ObserveReconfig(
			id, alloc, dep.Region.Lambda, core.Diff(lkg, alloc), rep.Total.Seconds())
		if ferr != nil {
			fsp.Fail(ferr)
			log.Warn("flow-impact simulation failed", "err", ferr)
		} else {
			fsp.SetAttr(fmt.Sprintf("pipes=%d flows=%d p99=%.4f stranded_bytes=%.0f",
				imp.Pipes, imp.Flows, imp.P99, imp.BytesStranded))
		}
		fsp.Finish()
	}
	err = d.runAudit(ctx, id)
	root.Fail(err)
	root.Finish()
	d.recordHistory(trig, id, recordAt, preHealth,
		hoseAgg(last), hoseAgg(tm), lkg, alloc, dep, err)
	return err
}

// repair runs the anti-entropy pass: fetch every device's state, compute
// the change that restores the fabric's intent, execute and re-audit. The
// pass gets its own trace ("repair" root) so a reconciliation's state
// fetches and reconfiguration phases are journaled like a convergence.
func (d *Daemon) repair() error {
	d.mu.Lock()
	fab, lkg, last := d.fab, d.lkg, d.lastMatrix
	d.mu.Unlock()

	recordAt := d.now()
	var preHealth history.Health
	if d.cfg.History != nil {
		preHealth = d.healthBrief()
	}
	id := d.nextTraceID()
	root := d.tracer.Start(id, "repair")
	ctx := trace.ContextWith(context.Background(), root)
	err := d.repairIn(ctx, id, fab)
	root.Fail(err)
	root.Finish()
	// A repair restores intent rather than changing it, so the record's
	// allocation diff is empty; what it documents is the health transition
	// and the reconciliation's span tree.
	d.recordHistory(history.TriggerRepair, id, recordAt, preHealth,
		hoseAgg(last), hoseAgg(last), lkg, lkg, fab.Deployment(), err)
	return err
}

func (d *Daemon) repairIn(ctx context.Context, id uint64, fab *fabric.Fabric) error {
	root := trace.FromContext(ctx)
	states := make(map[string]map[string]any)
	fsp := root.Child("fetch-state")
	for _, name := range d.ctl.Devices() {
		st, err := d.ctl.Call(name, "state", nil)
		if err != nil {
			d.penalizeIn(id, err)
			fsp.Fail(err)
			fsp.Finish()
			return fmt.Errorf("repair: state of %s: %w", name, err)
		}
		states[name] = st
	}
	fsp.Finish()
	ch, err := fab.Reconcile(states)
	if err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	if !fabric.EmptyChange(ch) {
		d.m.reconciles.Inc()
		rep, err := d.ctl.Reconfigure(ctx, ch)
		if err != nil {
			d.m.reconcileFailures.Inc()
			d.penalizeIn(id, err)
			return fmt.Errorf("repair reconfigure: %w", err)
		}
		d.log.Info("repair: reconciled devices to last-known-good intent", "reconfig_id", id)
		d.mu.Lock()
		lkg, haveLKG := d.lkg, d.haveLKG
		d.mu.Unlock()
		if d.cfg.FlowMonitor != nil && haveLKG {
			// A reconcile has no per-pair moves; model it as a uniform dip
			// sized by the fraction of circuit endpoints the change drained
			// — the whole-region view of a chaos/repair cycle.
			frac := 0.0
			if n := fab.CircuitCount(); n > 0 {
				frac = float64(len(ch.Drain)) / float64(2*n)
			}
			fsp := root.Child("flowsim-impact")
			imp, ferr := d.cfg.FlowMonitor.ObserveRepair(
				id, lkg, fab.Deployment().Region.Lambda, frac, rep.Total.Seconds())
			if ferr != nil {
				fsp.Fail(ferr)
				d.log.Warn("flow-impact simulation failed", "reconfig_id", id, "err", ferr)
			} else {
				fsp.SetAttr(fmt.Sprintf("pipes=%d flows=%d p99=%.4f stranded_bytes=%.0f",
					imp.Pipes, imp.Flows, imp.P99, imp.BytesStranded))
			}
			fsp.Finish()
		}
	}
	if err := d.runAudit(ctx, id); err != nil {
		return err
	}
	d.mu.Lock()
	ok := d.lastAuditOK
	if ok {
		d.needRepair = false
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("repair: audit still failing")
	}
	return nil
}

// runAudit checks device state against intent and records the result as
// an "audit" span under whatever span ctx carries (the reconfig or repair
// root). An audit mismatch schedules a repair.
func (d *Daemon) runAudit(ctx context.Context, traceID uint64) error {
	d.mu.Lock()
	fab := d.fab
	d.mu.Unlock()
	d.m.audits.Inc()
	sp := trace.FromContext(ctx).Child("audit")
	err := d.ctl.AuditCtx(trace.ContextWith(ctx, sp), fab.Expected())
	sp.Fail(err)
	sp.Finish()
	d.mu.Lock()
	d.lastAuditAt = d.now()
	d.lastAuditOK = err == nil
	if err != nil {
		d.needRepair = true
	}
	d.mu.Unlock()
	if err != nil {
		d.m.auditFailures.Inc()
		d.penalizeIn(traceID, err)
		return fmt.Errorf("audit: %w", err)
	}
	return nil
}

func (d *Daemon) dropPending() {
	d.mu.Lock()
	d.pending = nil
	d.mu.Unlock()
}

func (d *Daemon) setErr(msg string) {
	d.mu.Lock()
	d.lastErr = msg
	d.mu.Unlock()
}

func (d *Daemon) repairNeeded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.needRepair
}

func (d *Daemon) updateStaleness() {
	d.mu.Lock()
	at, have := d.lastGoodAt, d.haveLKG
	d.mu.Unlock()
	if have {
		d.m.staleness.Set(d.now().Sub(at).Seconds())
	}
}

// Audit runs an immediate device-state audit against the current intent.
func (d *Daemon) Audit() error {
	d.mu.Lock()
	fab := d.fab
	d.mu.Unlock()
	return d.ctl.Audit(fab.Expected())
}

// RepairNow runs one anti-entropy repair pass immediately. When ctx
// carries a span (a chaos cycle's replan span), the pass is journaled
// under it; otherwise it gets its own "repair" trace. Together with
// Healthy and ConvergedNow this satisfies chaos.ControlPlane.
func (d *Daemon) RepairNow(ctx context.Context) error {
	sp := trace.FromContext(ctx)
	if sp == nil {
		return d.repair()
	}
	d.mu.Lock()
	fab := d.fab
	d.mu.Unlock()
	return d.repairIn(ctx, sp.TraceID(), fab)
}

// ConvergedNow reports whether the region is healthy, repaired and
// serving the latest allocation — the settle condition of a chaos cycle.
func (d *Daemon) ConvergedNow() bool {
	return d.Status().Converged
}

// penalizeIn attributes an error to the device that caused it and
// advances that device's breaker, journaling any trip under the given
// trace (the reconfiguration or repair that surfaced the failure).
func (d *Daemon) penalizeIn(traceID uint64, err error) {
	var de *control.DeviceError
	if !errors.As(err, &de) {
		return
	}
	d.hmu.Lock()
	defer d.hmu.Unlock()
	h, ok := d.health[de.Device]
	if !ok {
		return
	}
	d.recordFailureLocked(traceID, de.Device, h, de)
}
