package daemon

import (
	"strings"
	"testing"
	"time"

	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/fabric"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// fullSolve is the from-scratch reference the daemon's incremental books
// must stay equal to.
func fullSolve(t *testing.T, rig *fabric.Rig, tm *traffic.Matrix) core.Allocation {
	t.Helper()
	want, err := rig.Dep.Allocate(tm)
	if err != nil {
		t.Fatalf("reference allocate: %v", err)
	}
	return want
}

// books snapshots the daemon's incremental allocator state and its
// last-known-good allocation.
func books(d *Daemon) (state, lkg core.Allocation, have bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocState == nil {
		return core.Allocation{}, d.lkg, false
	}
	return d.allocState.Snapshot(), d.lkg, true
}

// TestDaemonIncrementalConvergence drives three shifts and checks that the
// daemon solved the first from scratch and the rest incrementally, with
// the retained books always equal to a from-scratch solve of the same
// matrix.
func TestDaemonIncrementalConvergence(t *testing.T) {
	rig := toyRig(t, nil)
	mats := []*traffic.Matrix{
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95),
		toyMatrix(rig, 80, 10),
	}
	reg := telemetry.NewRegistry()
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(mats...),
		Registry:   reg,
		Logger:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range mats {
		if done := d.Step(); done {
			t.Fatalf("feed exhausted after %d shifts", i)
		}
		want := fullSolve(t, rig, tm)
		state, lkg, have := books(d)
		if !have {
			t.Fatalf("no incremental state after shift %d", i+1)
		}
		if !state.Equal(want) {
			t.Fatalf("shift %d: incremental books diverged from full solve", i+1)
		}
		if !lkg.Equal(want) {
			t.Fatalf("shift %d: last-known-good diverged from full solve", i+1)
		}
	}
	if got := counterValue(t, reg, "iris_alloc_fallback_total"); got != 1 {
		t.Errorf("iris_alloc_fallback_total = %v, want 1 (only the first solve)", got)
	}
	if got := counterValue(t, reg, "iris_alloc_incremental_total"); got != 2 {
		t.Errorf("iris_alloc_incremental_total = %v, want 2", got)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "iris_alloc_pairs_resolved") {
		t.Error("metrics missing iris_alloc_pairs_resolved histogram")
	}
}

// TestDaemonCoalescesBurst verifies MaxBatch folds a burst of queued
// shifts into one convergence on the newest matrix.
func TestDaemonCoalescesBurst(t *testing.T) {
	rig := toyRig(t, nil)
	mats := []*traffic.Matrix{
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95),
		toyMatrix(rig, 80, 10),
		toyMatrix(rig, 30, 70),
		toyMatrix(rig, 55, 25),
	}
	reg := telemetry.NewRegistry()
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(mats...),
		MaxBatch:   3,
		Registry:   reg,
		Logger:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Step 1 drains shifts 1-3 and converges on shift 3 only.
	if done := d.Step(); done {
		t.Fatal("feed exhausted prematurely")
	}
	if _, lkg, _ := books(d); !lkg.Equal(fullSolve(t, rig, mats[2])) {
		t.Fatal("batched step did not converge on the newest matrix of the burst")
	}
	// Step 2 drains shifts 4-5 and converges on shift 5.
	if done := d.Step(); done {
		t.Fatal("feed exhausted prematurely")
	}
	state, lkg, _ := books(d)
	if !lkg.Equal(fullSolve(t, rig, mats[4])) {
		t.Fatal("second batched step did not converge on the final matrix")
	}
	if !state.Equal(lkg) {
		t.Fatal("incremental books diverged from last-known-good")
	}
	if done := d.Step(); !done {
		t.Fatal("feed not exhausted after both batches")
	}

	if got := counterValue(t, reg, "iris_daemon_coalesced_shifts_total"); got != 3 {
		t.Errorf("iris_daemon_coalesced_shifts_total = %v, want 3 (2 in the first burst, 1 in the second)", got)
	}
	if got := counterValue(t, reg, "iris_reconfig_total"); got != 2 {
		t.Errorf("iris_reconfig_total = %v, want 2 (one per batch)", got)
	}
}

// TestDaemonIncrementalRollbackOnFailure verifies a reconfiguration
// aborted by a device failure rolls the incremental books back to the
// last-known-good allocation, and that the retried shift still converges
// through the delta path after the device heals.
func TestDaemonIncrementalRollbackOnFailure(t *testing.T) {
	rig, shims := faultRig(t, nil)
	mats := []*traffic.Matrix{
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95),
	}
	reg := telemetry.NewRegistry()
	d, err := New(Config{
		Fab:        rig.Fab,
		Controller: rig.Testbed.Controller,
		Feed:       traffic.NewReplay(mats...),
		// High threshold: the breaker must not open, so the rollback and
		// retry are isolated from the degraded-mode machinery.
		FailureThreshold: 100,
		Seed:             1,
		Registry:         reg,
		Logger:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	d.ProbeOnce()
	d.Step() // shift 1, clean
	want1 := fullSolve(t, rig, mats[0])

	victim := pickVictim(rig)
	shims[victim].set(true, 0)
	if done := d.Step(); done { // shift 2 aborts mid-reconfiguration
		t.Fatal("feed exhausted prematurely")
	}
	if got := counterValue(t, reg, "iris_reconfig_failures_total"); got != 1 {
		t.Fatalf("iris_reconfig_failures_total = %v, want 1", got)
	}
	state, lkg, have := books(d)
	if !have {
		t.Fatal("incremental state discarded by failed reconfiguration")
	}
	if !state.Equal(want1) || !lkg.Equal(want1) {
		t.Fatal("failed reconfiguration did not roll the books back to shift 1")
	}

	// Heal; the next step repairs and converges the retried shift via the
	// delta path.
	shims[victim].set(false, 0)
	if done := d.Step(); done {
		t.Fatal("feed exhausted prematurely")
	}
	state, lkg, _ = books(d)
	want2 := fullSolve(t, rig, mats[1])
	if !state.Equal(want2) || !lkg.Equal(want2) {
		t.Fatal("retried shift did not converge to the full solve")
	}
	if got := counterValue(t, reg, "iris_alloc_incremental_total"); got < 1 {
		t.Errorf("iris_alloc_incremental_total = %v, want ≥1 (retry should use the delta path)", got)
	}
}

// hubDuctID returns the toy region's central hub-hub duct.
func hubDuctID(t *testing.T, m *fibermap.Map) int {
	t.Helper()
	for _, du := range m.Ducts {
		if m.Nodes[du.A].Kind == fibermap.Hut && m.Nodes[du.B].Kind == fibermap.Hut {
			return du.ID
		}
	}
	t.Fatal("no hub-hub duct in toy map")
	return -1
}

// TestDaemonIncrementalChaosHeal runs a full chaos cycle (cut the hub
// duct, detect, restore, repair) against a daemon using incremental
// allocation, and checks the retained books still equal a from-scratch
// solve of the demand the daemon last converged on.
func TestDaemonIncrementalChaosHeal(t *testing.T) {
	devs := chaos.NewDeviceSet()
	rig, err := fabric.BringUp(fabric.BringUpConfig{Toy: true, WrapDevice: devs.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)

	dcs := rig.Dep.Region.Map.DCs()
	mats := make([]*traffic.Matrix, 2)
	for i, s := range [][2]float64{{60, 45}, {20, 95}} {
		tm := traffic.NewMatrix(dcs)
		tm.Set(hose.Pair{A: dcs[0], B: dcs[1]}, s[0])
		tm.Set(hose.Pair{A: dcs[0], B: dcs[2]}, s[1])
		mats[i] = tm
	}

	clock := newFakeClock()
	tracer := trace.New(8192)
	reg := telemetry.NewRegistry()
	inj, err := chaos.NewInjector(chaos.InjectorConfig{
		Devices:  devs,
		Fab:      rig.Fab,
		Tracer:   tracer,
		Registry: reg,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             traffic.NewReplay(mats...),
		FailureThreshold: 2,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
		Seed:             1,
		Registry:         reg,
		Now:              clock.Now,
		Logger:           testLogger(t),
		Tracer:           tracer,
		Chaos:            inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	d.ProbeOnce()
	d.Step()
	if !d.ConvergedNow() {
		t.Fatalf("not converged before cycle: %+v", d.Status())
	}

	pump := func() {
		clock.advance(120 * time.Millisecond)
		d.ProbeOnce()
		st := d.Status()
		if st.Healthy && !st.NeedRepair {
			d.Step()
		}
	}
	if _, err := inj.RunCycle(chaos.CycleConfig{
		Scenario: chaos.Cut(hubDuctID(t, rig.Dep.Region.Map)),
		CP:       d,
		Pump:     pump,
		Timeout:  20 * time.Second,
	}); err != nil {
		t.Fatalf("chaos cycle: %v", err)
	}
	// Drain whatever the cycle's pumping left of the feed.
	for !d.Step() {
	}

	d.mu.Lock()
	last := d.lastMatrix
	d.mu.Unlock()
	if last == nil {
		t.Fatal("daemon retained no demand matrix")
	}
	want := fullSolve(t, rig, last)
	state, lkg, have := books(d)
	if !have {
		t.Fatal("no incremental state after chaos cycle")
	}
	if !state.Equal(want) {
		t.Fatal("incremental books diverged from full solve after chaos heal")
	}
	if !lkg.Equal(want) {
		t.Fatal("last-known-good diverged from full solve after chaos heal")
	}
}
