package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// getJSONError asserts a request fails with the given status and a JSON
// {"error": ...} body, returning the error message.
func getJSONError(t *testing.T, res *http.Response, wantCode int) string {
	t.Helper()
	defer res.Body.Close()
	if res.StatusCode != wantCode {
		t.Fatalf("status = %d, want %d", res.StatusCode, wantCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error content-type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Error == "" {
		t.Fatal("JSON error body has empty error field")
	}
	return body.Error
}

// TestDebugEventsUnknownReconfig pins the /debug/events contract: a known
// reconfig ID returns its span dump, an unknown one a 404 with a JSON
// error body rather than an empty 200 dump.
func TestDebugEventsUnknownReconfig(t *testing.T) {
	h := newHistoryRig(t, [][2]float64{{60, 45}})
	h.d.ProbeOnce()
	h.d.Step()
	srv := httptest.NewServer(h.d.Handler())
	defer srv.Close()

	id := h.d.Status().LastReconfigID
	if id == 0 {
		t.Fatal("no committed reconfiguration")
	}
	res, err := srv.Client().Get(srv.URL + "/debug/events?reconfig=" + strconv.FormatUint(id, 10))
	if err != nil {
		t.Fatal(err)
	}
	var dump EventsDump
	if res.StatusCode != 200 {
		t.Fatalf("known reconfig returned %d", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(dump.Events) == 0 || len(dump.Tree) == 0 {
		t.Fatalf("known reconfig dump empty: %d events, %d roots", len(dump.Events), len(dump.Tree))
	}

	res, err = srv.Client().Get(srv.URL + "/debug/events?reconfig=999999999")
	if err != nil {
		t.Fatal(err)
	}
	msg := getJSONError(t, res, http.StatusNotFound)
	if !strings.Contains(msg, "999999999") {
		t.Fatalf("404 body does not name the missing reconfig: %q", msg)
	}

	// The unfiltered firehose dump stays a 200 even when empty of the
	// requested trace.
	res, err = srv.Client().Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("unfiltered dump returned %d", res.StatusCode)
	}
}

// TestChaosCycleEndpointValidation covers /debug/chaos/cycle's error
// paths: wrong method, unparsable scenario, bad timeout.
func TestChaosCycleEndpointValidation(t *testing.T) {
	h := newHistoryRig(t, [][2]float64{{60, 45}})
	h.d.ProbeOnce()
	h.d.Step()
	srv := httptest.NewServer(h.d.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/chaos/cycle?scenario=cut:0")
	if err != nil {
		t.Fatal(err)
	}
	getJSONError(t, res, http.StatusMethodNotAllowed)

	res, err = srv.Client().Post(srv.URL+"/debug/chaos/cycle?scenario=bogus:9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	getJSONError(t, res, http.StatusBadRequest)

	res, err = srv.Client().Post(srv.URL+"/debug/chaos/cycle?scenario=cut:0&timeout=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	getJSONError(t, res, http.StatusBadRequest)
}
