package daemon_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"iris/internal/daemon"
	"iris/internal/telemetry"
)

// TestBuildRegionAssemblesEverything exercises the shared assembly path:
// one call brings up the toy fabric behind chaos shims, arms the injector
// and flow monitor on the region's registry, and hands back a daemon that
// converges and publishes a demand aggregate.
func TestBuildRegionAssemblesEverything(t *testing.T) {
	cfg := daemon.DefaultRegionConfig()
	cfg.OSSDelay = 0
	cfg.Steps = 2
	cfg.Chaos = true
	cfg.FlowLoad = true
	cfg.FlowWindow = time.Second
	cfg.FlowGbps = 0.02
	cfg.TraceEvents = 1024
	b, err := daemon.BuildRegion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Injector == nil || b.Devices == nil {
		t.Fatal("chaos requested but injector/device set missing")
	}
	if b.Monitor == nil {
		t.Fatal("flow monitor requested but missing")
	}
	if b.Tracer == nil {
		t.Fatal("tracer missing")
	}

	if _, ok := b.Daemon.Demand(); ok {
		t.Fatal("demand aggregate published before first convergence")
	}
	b.Daemon.ProbeOnce()
	if done := b.Daemon.Step(); done {
		t.Fatal("feed exhausted on first step with Steps=2")
	}
	if !b.Daemon.ConvergedNow() {
		t.Fatalf("region not converged after first step: %+v", b.Daemon.Status())
	}

	dm, ok := b.Daemon.Demand()
	if !ok {
		t.Fatal("no demand aggregate after convergence")
	}
	if dm.Total <= 0 || dm.Pairs == 0 || dm.MaxPair <= 0 {
		t.Fatalf("demand aggregate empty: %+v", dm)
	}
	// The per-DC hose aggregates must sum to twice the total (each pair's
	// demand counts at both endpoints).
	var perDC float64
	for _, v := range dm.PerDC {
		perDC += v
	}
	if math.Abs(perDC-2*dm.Total) > 1e-9 {
		t.Fatalf("per-DC aggregates sum to %v, want 2*total = %v", perDC, 2*dm.Total)
	}

	// Steps=2 bounds the feed: the third step reports exhaustion.
	if done := b.Daemon.Step(); done {
		t.Fatal("feed exhausted on second step")
	}
	if done := b.Daemon.Step(); !done {
		t.Fatal("feed not exhausted after Steps=2")
	}

	// Everything landed on one instance-scoped registry.
	var sb strings.Builder
	if err := b.Registry.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"iris_daemon_steps_total", "iris_chaos_active_faults", "iris_flowsim_runs_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("region registry missing %s", want)
		}
	}
}

// TestSharedRegistryPanics is the daemon-level half of the telemetry
// collision regression: wiring two region instances to one registry must
// fail loudly at construction, not silently alias their metrics.
func TestSharedRegistryPanics(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := daemon.DefaultRegionConfig()
	cfg.OSSDelay = 0
	cfg.Steps = 1
	cfg.TraceEvents = 0
	cfg.Registry = reg
	b, err := daemon.BuildRegion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	defer func() {
		if recover() == nil {
			t.Error("second region on the same registry did not panic")
		}
	}()
	b2, err := daemon.BuildRegion(cfg)
	if err == nil {
		b2.Close()
	}
}
