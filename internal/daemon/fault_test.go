package daemon

import (
	"strings"
	"sync"
	"testing"
	"time"

	"iris/internal/control"
	"iris/internal/fabric"
	"iris/internal/telemetry"
	"iris/internal/traffic"
)

// flaky wraps an emulated device so tests can inject failures and hangs at
// will. Probes use the "state" op (not protocol-level "ping"), so every
// injected fault is visible to the daemon's supervision.
type flaky struct {
	control.Device
	mu   sync.Mutex
	fail bool
	hang time.Duration
}

func (f *flaky) set(fail bool, hang time.Duration) {
	f.mu.Lock()
	f.fail, f.hang = fail, hang
	f.mu.Unlock()
}

func (f *flaky) Handle(op string, args map[string]any) (map[string]any, error) {
	f.mu.Lock()
	fail, hang := f.fail, f.hang
	f.mu.Unlock()
	if hang > 0 {
		time.Sleep(hang)
	}
	if fail {
		return nil, errTesting
	}
	return f.Device.Handle(op, args)
}

var errTesting = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected fault" }

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// faultRig brings up the toy region with every device wrapped in a flaky
// shim, returning the shims by device name.
func faultRig(t *testing.T, mutate func(*fabric.BringUpConfig)) (*fabric.Rig, map[string]*flaky) {
	t.Helper()
	shims := make(map[string]*flaky)
	var mu sync.Mutex
	rig := toyRig(t, func(cfg *fabric.BringUpConfig) {
		cfg.WrapDevice = func(name string, dev control.Device) control.Device {
			f := &flaky{Device: dev}
			mu.Lock()
			shims[name] = f
			mu.Unlock()
			return f
		}
		if mutate != nil {
			mutate(cfg)
		}
	})
	return rig, shims
}

// breakerOf returns the named device's breaker string from Status.
func breakerOf(t *testing.T, d *Daemon, name string) string {
	t.Helper()
	for _, ds := range d.Status().Devices {
		if ds.Name == name {
			return ds.Breaker
		}
	}
	t.Fatalf("device %s not in status", name)
	return ""
}

// pickVictim returns DC 0's transceiver bank: both toy traffic pairs
// terminate at DC 0, so every shift's reconfiguration must touch it —
// which makes a fault injected there deterministically fatal mid-flight.
func pickVictim(rig *fabric.Rig) string {
	return rig.Fab.XcvrName(rig.Dep.Region.Map.DCs()[0])
}

// TestBreakerTripAndRecovery is the headline fault-injection scenario from
// the issue: a device fails mid-reconfiguration, the breaker opens with
// exponential backoff, the region holds the last-known-good allocation,
// and once the device heals the daemon reconciles and re-converges.
func TestBreakerTripAndRecovery(t *testing.T) {
	rig, shims := faultRig(t, nil)
	clock := newFakeClock()
	feed := traffic.NewReplay(
		toyMatrix(rig, 60, 45),
		toyMatrix(rig, 20, 95),
		toyMatrix(rig, 80, 10),
	)
	reg := telemetry.NewRegistry()
	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             feed,
		FailureThreshold: 2,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
		Seed:             1,
		Registry:         reg,
		Now:              clock.Now,
		Logger:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shift 1 converges cleanly.
	d.ProbeOnce()
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after clean shift: %v", err)
	}
	lkg := d.Status().Allocation

	// Inject: an OSS starts failing; shift 2's reconfiguration dies
	// mid-flight.
	victim := pickVictim(rig)
	shims[victim].set(true, 0)
	if done := d.Step(); done {
		t.Fatal("feed exhausted prematurely")
	}
	if got := counterValue(t, reg, "iris_reconfig_failures_total"); got != 1 {
		t.Fatalf("iris_reconfig_failures_total = %v, want 1", got)
	}
	st := d.Status()
	if !st.NeedRepair {
		t.Fatal("failed reconfiguration did not schedule a repair")
	}
	if !st.PendingShift {
		t.Fatal("failed shift was dropped instead of retried")
	}

	// One failed probe reaches the threshold (reconfig failure counted
	// one): the breaker opens.
	d.ProbeOnce()
	if got := breakerOf(t, d, victim); got != "open" {
		t.Fatalf("breaker = %q after threshold, want open", got)
	}
	if d.Healthy() {
		t.Fatal("Healthy() with an open breaker")
	}
	trips := reg.LookupCounterWith("iris_breaker_trips_total", victim)
	if trips == nil || trips.Value() != 1 {
		t.Fatalf("breaker trips = %v, want 1", trips)
	}

	// Degraded: steps are skipped, the LKG allocation is held.
	d.Step()
	if got := counterValue(t, reg, "iris_daemon_skipped_steps_total"); got != 1 {
		t.Fatalf("skipped steps = %v, want 1", got)
	}
	held := d.Status()
	if len(held.Allocation) != len(lkg) {
		t.Fatalf("degraded allocation %v, want held LKG %v", held.Allocation, lkg)
	}
	for i := range lkg {
		if held.Allocation[i] != lkg[i] {
			t.Fatalf("degraded allocation %v, want held LKG %v", held.Allocation, lkg)
		}
	}

	// Cooldown expires while the device is still broken: the half-open
	// trial fails and the breaker re-opens with a doubled cooldown.
	clock.advance(150 * time.Millisecond) // past the first jittered quarantine (≤100ms)
	d.ProbeOnce()
	if got := breakerOf(t, d, victim); got != "open" {
		t.Fatalf("breaker = %q after failed half-open trial, want open", got)
	}

	// Heal the device; after the (doubled, ≤200ms) cooldown the half-open
	// trial succeeds and the breaker closes.
	shims[victim].set(false, 0)
	clock.advance(250 * time.Millisecond)
	d.ProbeOnce()
	if got := breakerOf(t, d, victim); got != "closed" {
		t.Fatalf("breaker = %q after heal, want closed", got)
	}
	if !d.Healthy() {
		t.Fatal("not Healthy() after heal")
	}

	// The next step repairs the partially applied change and converges on
	// the pending shift.
	if done := d.Step(); done {
		t.Fatal("feed exhausted prematurely")
	}
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
	st = d.Status()
	if st.NeedRepair || st.PendingShift || !st.Converged {
		t.Fatalf("not reconverged after heal: %+v", st)
	}

	// Shift 3 and drain the feed.
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after final shift: %v", err)
	}
	if done := d.Step(); !done {
		t.Fatal("feed not exhausted")
	}

	// The metrics surface reflects the injected failure.
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `iris_probe_failures_total{device="`+victim+`"}`) {
		t.Errorf("metrics missing probe failures for %s:\n%s", victim, out)
	}
	// Two trips: the initial open plus the failed half-open trial.
	if !strings.Contains(out, `iris_breaker_trips_total{device="`+victim+`"} 2`) {
		t.Errorf("metrics missing breaker trips for %s:\n%s", victim, out)
	}
}

// TestHungDeviceTripsBreaker verifies the transport deadline converts a
// hang into a failure, and that the poisoned connection redials after the
// device unsticks.
func TestHungDeviceTripsBreaker(t *testing.T) {
	rig, shims := faultRig(t, func(cfg *fabric.BringUpConfig) {
		cfg.Dial = control.DialOptions{RPCTimeout: 75 * time.Millisecond}
	})
	clock := newFakeClock()
	d, err := New(Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             traffic.NewReplay(toyMatrix(rig, 60, 45)),
		FailureThreshold: 1,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		Seed:             1,
		Now:              clock.Now,
		Logger:           testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	victim := pickVictim(rig)
	shims[victim].set(false, 400*time.Millisecond)
	d.ProbeOnce()
	if got := breakerOf(t, d, victim); got != "open" {
		t.Fatalf("breaker = %q after hung probe, want open", got)
	}

	// Unstick; after cooldown the trial probe must succeed over a freshly
	// redialled connection.
	shims[victim].set(false, 0)
	clock.advance(100 * time.Millisecond)
	time.Sleep(450 * time.Millisecond) // let the stalled handler finish serving
	d.ProbeOnce()
	if got := breakerOf(t, d, victim); got != "closed" {
		t.Fatalf("breaker = %q after unstick, want closed", got)
	}

	// A healthy region converges normally afterwards.
	d.Step()
	if err := d.Audit(); err != nil {
		t.Fatalf("audit after unstick: %v", err)
	}
}
