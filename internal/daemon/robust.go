package daemon

import (
	"fmt"
	"math"

	"iris/internal/core"
	"iris/internal/history"
	"iris/internal/robust"
	"iris/internal/traffic"
)

// RobustPolicy arms METTEOR-style robust reconfiguration: the daemon
// solves one envelope allocation over a window of recent matrices (plus
// optional change-process forecasts) and skips device reconfiguration
// while the live demand stays inside the committed envelope, re-planning
// only on escape. Construct via daemon.Config.Robust; zero fields select
// the defaults.
type RobustPolicy struct {
	// Window is how many recent matrices the envelope is solved over
	// (default 4).
	Window int
	// Forecast appends this many change-process forecast steps beyond the
	// newest matrix to the envelope's set (0 disables forecasting).
	Forecast int
	// CP is the change process forecasts are rolled with; required when
	// Forecast > 0 (it should match the live feed's process).
	CP traffic.ChangeProcess
	// Seed isolates the forecast branch's randomness from the live feed.
	Seed int64
	// Headroom, Shrink and Budget mirror robust.Config (zero selects its
	// defaults: 1.15, 0.5, 8).
	Headroom float64
	Shrink   float64
	Budget   int
}

func (p RobustPolicy) withDefaults() RobustPolicy {
	if p.Window <= 0 {
		p.Window = 4
	}
	if p.Forecast < 0 {
		p.Forecast = 0
	}
	return p
}

// RobustStatus is /status's robust block: the committed envelope and the
// policy's skip/escape history.
type RobustStatus struct {
	Enabled bool `json:"enabled"`
	// Window is the policy's matrix-window bound; Matrices is the size of
	// the set the committed envelope was solved over (window + forecasts).
	Window   int `json:"window"`
	Matrices int `json:"matrices,omitempty"`
	// Headroom is the committed envelope's inflation factor; Clamped
	// records that it was scaled into the hose polytope.
	Headroom float64 `json:"headroom,omitempty"`
	Clamped  bool    `json:"clamped,omitempty"`
	// AllAdmissible: every matrix of the solved set verified against the
	// committed allocation.
	AllAdmissible bool `json:"all_admissible"`
	// EnvelopeTotal is the envelope's total demand in wavelengths;
	// ProvisionedWavelengths and Overprovision are the METTEOR capacity
	// cost (provisioned over the set's mean demand).
	EnvelopeTotal          float64 `json:"envelope_total,omitempty"`
	ProvisionedWavelengths float64 `json:"provisioned_wavelengths,omitempty"`
	Overprovision          float64 `json:"overprovision,omitempty"`
	// Utilization is the live matrix's worst per-pair fill of the
	// envelope (1 at the boundary).
	Utilization float64 `json:"utilization,omitempty"`
	// InEnvelope counts shifts absorbed without reconfiguration; Escapes
	// counts shifts that forced a re-plan.
	InEnvelope uint64 `json:"in_envelope"`
	Escapes    uint64 `json:"escapes"`
}

// convergeRobust is the robust-mode converge path: record the shift in
// the window, skip everything if the committed envelope still contains
// it, otherwise solve a fresh envelope over the window (plus forecasts)
// and drive the devices there through the shared commit path.
func (d *Daemon) convergeRobust(tm *traffic.Matrix) error {
	pol := d.cfg.Robust
	d.robustWin.Push(tm)

	d.mu.Lock()
	res, lkg, haveLKG := d.robustRes, d.lkg, d.haveLKG
	d.mu.Unlock()

	if res != nil && res.Envelope.Contains(tm) {
		// The committed allocation already provisions this demand: absorb
		// the shift with zero device operations.
		d.m.robustInEnv.Inc()
		d.mu.Lock()
		d.robustInEnvN++
		d.lastMatrix = tm
		d.pending = nil
		d.lastGoodAt = d.now()
		d.mu.Unlock()
		return nil
	}

	trig := history.TriggerConverge
	if res != nil {
		trig = history.TriggerEnvelopeEscape
		d.m.robustEscapes.Inc()
		d.mu.Lock()
		d.robustEscapeN++
		escapes := res.Envelope.Escapes(tm)
		d.mu.Unlock()
		if len(escapes) > 0 {
			e := escapes[0]
			d.log.Info("robust: demand escaped envelope",
				"pairs", len(escapes), "worst_pair", fmt.Sprintf("%d-%d", e.Pair.A, e.Pair.B),
				"demand", e.Demand, "limit", e.Limit)
		}
	}

	ms := d.robustWin.Matrices()
	if pol.Forecast > 0 {
		// Seed the branch by the window's progress so successive re-plans
		// explore fresh forecast noise, deterministically under one seed.
		d.mu.Lock()
		step := d.steps
		d.mu.Unlock()
		ms = append(ms, traffic.Forecast(pol.Seed+int64(step), tm, pol.CP, pol.Forecast)...)
	}

	d.mu.Lock()
	fab := d.fab
	d.mu.Unlock()
	sol, err := robust.Solve(fab.Deployment(), ms, robust.Config{
		Headroom: pol.Headroom, Shrink: pol.Shrink, Budget: pol.Budget,
	})
	if err != nil {
		d.m.allocFailures.Inc()
		d.dropPending()
		return fmt.Errorf("robust plan: %w", err)
	}
	// Envelope solves are always full solves over the planned pairs.
	d.m.allocFallback.Inc()
	d.m.allocPairs.Observe(float64(len(sol.Alloc.Fibers) + len(sol.Alloc.Residual)))
	d.m.robustHeadroom.Set(sol.Headroom)
	d.m.robustOverprov.Set(sol.Overprovision)
	if !sol.AllAdmissible {
		d.log.Warn("robust: best-effort envelope (not all matrices admissible)",
			"matrices", len(ms), "headroom", sol.Headroom)
	}

	if haveLKG && sol.Alloc.Equal(lkg) {
		// Same circuits, fresher envelope: swap the books without touching
		// a device (and without a history record — nothing moved).
		d.mu.Lock()
		d.robustRes = sol
		d.allocState, d.lastMatrix = sol.State, tm
		d.pending = nil
		d.lastGoodAt = d.now()
		d.mu.Unlock()
		return nil
	}

	attr := fmt.Sprintf("robust=true matrices=%d headroom=%.3f overprovision=%.2f admissible=%v",
		len(ms), sol.Headroom, sol.Overprovision, sol.AllAdmissible)
	return d.commitChange(tm, sol.State, sol.Alloc, core.Undo{}, trig, attr,
		func() { d.robustRes = sol })
}

// robustStatus assembles /status's robust block (nil without a policy).
// Callers must not hold d.mu.
func (d *Daemon) robustStatus() *RobustStatus {
	pol := d.cfg.Robust
	if pol == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &RobustStatus{
		Enabled:    true,
		Window:     pol.Window,
		InEnvelope: d.robustInEnvN,
		Escapes:    d.robustEscapeN,
	}
	if res := d.robustRes; res != nil {
		st.Matrices = res.Envelope.Matrices
		st.Headroom = res.Headroom
		st.Clamped = res.Envelope.Clamped
		st.AllAdmissible = res.AllAdmissible
		st.EnvelopeTotal = res.Envelope.Total
		st.ProvisionedWavelengths = res.ProvisionedWavelengths
		st.Overprovision = res.Overprovision
		if d.lastMatrix != nil {
			st.Utilization = res.Envelope.Utilization(d.lastMatrix)
			if math.IsInf(st.Utilization, 0) {
				// JSON has no Inf; -1 marks demand on a pair the envelope
				// holds zero capacity for.
				st.Utilization = -1
			}
		}
	}
	return st
}

// RobustEnvelope returns the committed robust envelope (nil outside
// robust mode or before the first plan) — the topology API's audit view.
func (d *Daemon) RobustEnvelope() *robust.Envelope {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.robustRes == nil {
		return nil
	}
	return d.robustRes.Envelope
}
