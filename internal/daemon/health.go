package daemon

import (
	"sync"
	"time"
)

// Device health supervision: every device is probed on a fixed cadence
// (its "state" operation doubles as a liveness and sanity check, bounded
// by the controller transport's RPC deadline). Consecutive failures trip a
// per-device circuit breaker; a tripped device is quarantined for an
// exponentially growing, jittered cooldown, then given a single half-open
// trial probe. Success closes the breaker; failure re-opens it with a
// doubled cooldown up to the configured maximum.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

type deviceHealth struct {
	state       breakerState
	since       time.Time // when state last transitioned (zero = never)
	consecFails int
	cooldown    time.Duration // next quarantine length (pre-jitter)
	openUntil   time.Time
	lastErr     string
}

// transitionLocked moves a device's breaker to a new state, stamping the
// transition time, updating the gauge, and journaling the flip as an
// instant event in the flight recorder. Callers hold d.hmu.
func (d *Daemon) transitionLocked(traceID uint64, name string, h *deviceHealth, to breakerState) {
	if h.state == to {
		return
	}
	h.state = to
	h.since = d.now()
	d.m.breakerState.With(name).Set(float64(to)) // iota order matches the gauge encoding
	d.tracer.Emit(traceID, "breaker", name, to.String())
}

// ProbeOnce probes every non-quarantined device concurrently and advances
// breaker state. Run calls it on the probe interval; tests call it
// directly.
func (d *Daemon) ProbeOnce() {
	var wg sync.WaitGroup
	for _, name := range d.ctl.Devices() {
		if !d.admitProbe(name) {
			continue
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			d.probe(name)
		}(name)
	}
	wg.Wait()
	d.updateStaleness()
}

// admitProbe decides whether a device gets probed this round, moving an
// expired quarantine to half-open (one trial probe).
func (d *Daemon) admitProbe(name string) bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	h, ok := d.health[name]
	if !ok {
		return false
	}
	if h.state == breakerOpen {
		if d.now().Before(h.openUntil) {
			return false // still quarantined
		}
		d.transitionLocked(0, name, h, breakerHalfOpen)
	}
	return true
}

func (d *Daemon) probe(name string) {
	d.m.probes.Inc()
	_, err := d.ctl.Call(name, "state", nil)
	d.hmu.Lock()
	defer d.hmu.Unlock()
	h := d.health[name]
	if err == nil {
		if h.state != breakerClosed {
			d.log.Info("device healthy; breaker closed", "device", name)
		}
		d.transitionLocked(0, name, h, breakerClosed)
		h.consecFails = 0
		h.cooldown = 0
		h.lastErr = ""
		return
	}
	d.m.probeFailures.With(name).Inc()
	d.recordFailureLocked(0, name, h, err)
}

// recordFailureLocked registers one failure against a device and trips or
// re-trips its breaker when warranted. traceID attributes the failure to
// the reconfiguration or repair that surfaced it (0 for health probes).
// Callers hold d.hmu.
func (d *Daemon) recordFailureLocked(traceID uint64, name string, h *deviceHealth, err error) {
	h.consecFails++
	h.lastErr = err.Error()
	if h.state != breakerHalfOpen && h.consecFails < d.cfg.FailureThreshold {
		return
	}
	// Trip: exponential cooldown, doubled on every consecutive trip,
	// jittered to [cooldown/2, cooldown] so a fleet of breakers does not
	// retry in lockstep.
	if h.cooldown == 0 {
		h.cooldown = d.cfg.BackoffBase
	} else {
		h.cooldown *= 2
		if h.cooldown > d.cfg.BackoffMax {
			h.cooldown = d.cfg.BackoffMax
		}
	}
	quarantine := h.cooldown/2 + time.Duration(d.rng.Int63n(int64(h.cooldown/2)+1))
	h.openUntil = d.now().Add(quarantine)
	if h.state != breakerOpen {
		d.m.breakerTrips.With(name).Inc()
		d.log.Warn("breaker open",
			"device", name, "consecutive_failures", h.consecFails,
			"retry_in", quarantine.Round(time.Millisecond), "err", err,
			"reconfig_id", traceID)
	}
	d.transitionLocked(traceID, name, h, breakerOpen)
}

// Healthy reports whether every device breaker is closed. While any is
// open or half-open the daemon holds the last-known-good allocation
// instead of attempting reconfigurations.
func (d *Daemon) Healthy() bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	for _, h := range d.health {
		if h.state != breakerClosed {
			return false
		}
	}
	return true
}
