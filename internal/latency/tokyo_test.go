package latency

import (
	"testing"

	"iris/internal/geo"
)

func TestTokyoExampleMatchesFig2(t *testing.T) {
	e := Tokyo()
	// Paper: direct DC-DC is 19 km of fiber → 0.2 ms RTT.
	if e.DirectKM < 17 || e.DirectKM > 21 {
		t.Errorf("direct fiber = %.1f km, want ≈19", e.DirectKM)
	}
	if rtt := e.DirectRTTms(); rtt < 0.15 || rtt > 0.25 {
		t.Errorf("direct RTT = %.2f ms, want ≈0.2", rtt)
	}
	// Paper: DC-hub runs of 53-60 km → worst DC-DC RTT 1.2 ms via hubs.
	hubLeg := e.DC1.Dist(e.Hub1) * GeoToFiberFactor
	if hubLeg < 50 || hubLeg > 62 {
		t.Errorf("DC-hub fiber = %.1f km, want 53-60", hubLeg)
	}
	if rtt := e.ViaHubRTTms(); rtt < 1.0 || rtt > 1.3 {
		t.Errorf("via-hub RTT = %.2f ms, want ≈1.2", rtt)
	}
	// Paper: "a 6× latency reduction".
	if r := e.Reduction(); r < 5 || r > 7 {
		t.Errorf("reduction = %.1fx, want ≈6x", r)
	}
}

func TestTokyoConsistentWithInflation(t *testing.T) {
	// The example's reduction factor must equal the generic inflation
	// metric evaluated on the same geometry.
	e := Tokyo()
	infl, err := Inflation(e.DC1, e.DC2, []geo.Point{e.Hub1, e.Hub2})
	if err != nil {
		t.Fatal(err)
	}
	if diff := infl - e.Reduction(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Inflation %.4f != Reduction %.4f", infl, e.Reduction())
	}
}
