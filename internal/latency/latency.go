// Package latency implements the latency-inflation analysis of §2.1 of the
// paper (Figs. 2 and 3): how much longer DC-hub-DC paths are than direct
// DC-DC connectivity. Following the paper, DC-DC fiber distance is
// estimated from geographic distance using the industry rule of thumb of
// multiplying by two, since not all DC pairs have direct fiber routes.
package latency

import (
	"fmt"

	"iris/internal/geo"
)

// GeoToFiberFactor is the industry rule of thumb the paper uses to
// estimate fiber distance from geographic distance.
const GeoToFiberFactor = 2.0

// LightSpeedKMPerMS is the propagation speed in fiber (≈2/3 of c), used to
// convert fiber kilometres into round-trip milliseconds.
const LightSpeedKMPerMS = 200.0

// RTTms returns the round-trip propagation latency in milliseconds over
// the given one-way fiber distance.
func RTTms(fiberKM float64) float64 { return 2 * fiberKM / LightSpeedKMPerMS }

// Inflation returns the latency inflation of routing one DC pair through
// the best of the given hubs instead of directly: (best DC-hub-DC fiber
// distance) / (direct DC-DC fiber distance). Both distances use the
// geographic rule of thumb. It returns an error when the two DCs are
// co-located (direct distance zero) or no hubs are given.
func Inflation(a, b geo.Point, hubs []geo.Point) (float64, error) {
	if len(hubs) == 0 {
		return 0, fmt.Errorf("latency: no hubs")
	}
	direct := a.Dist(b) * GeoToFiberFactor
	if direct == 0 {
		return 0, fmt.Errorf("latency: co-located DCs")
	}
	best := -1.0
	for _, h := range hubs {
		via := (a.Dist(h) + h.Dist(b)) * GeoToFiberFactor
		if best < 0 || via < best {
			best = via
		}
	}
	return best / direct, nil
}

// Inflations returns the inflation of every DC pair in a region against
// its best hub. Pairs at zero distance are skipped.
func Inflations(dcs []geo.Point, hubs []geo.Point) []float64 {
	var out []float64
	for i := range dcs {
		for j := i + 1; j < len(dcs); j++ {
			infl, err := Inflation(dcs[i], dcs[j], hubs)
			if err != nil {
				continue
			}
			out = append(out, infl)
		}
	}
	return out
}
