package latency

import "iris/internal/geo"

// TokyoExample reproduces the geometry behind Fig. 2 of the paper: a
// region whose two hubs sit south of two nearby DCs, so the DC-hub-DC
// fiber path is several times longer than a direct DC-DC connection.
//
// The figures are the paper's: DC-hub fiber runs of 53–60 km give a
// worst-case 1.2 ms DC-DC round trip through a hub, while the 19 km direct
// fiber run would take 0.2 ms — a 6× reduction.
type TokyoExample struct {
	DC1, DC2   geo.Point
	Hub1, Hub2 geo.Point
	// DirectKM is the direct DC-DC fiber distance and ViaHubKM the
	// shortest DC-hub-DC fiber distance.
	DirectKM, ViaHubKM float64
}

// Tokyo returns the example. Coordinates place the DCs ~9.5 km apart in
// the city's north and the hubs ~27 km south, so that with the 2× geo-to-
// fiber rule the distances match the paper's fiber measurements.
func Tokyo() TokyoExample {
	e := TokyoExample{
		DC1:  geo.Point{X: -4.75, Y: 14},
		DC2:  geo.Point{X: 4.75, Y: 14},
		Hub1: geo.Point{X: -2, Y: -13},
		Hub2: geo.Point{X: 2, Y: -13},
	}
	e.DirectKM = e.DC1.Dist(e.DC2) * GeoToFiberFactor
	via1 := (e.DC1.Dist(e.Hub1) + e.Hub1.Dist(e.DC2)) * GeoToFiberFactor
	via2 := (e.DC1.Dist(e.Hub2) + e.Hub2.Dist(e.DC2)) * GeoToFiberFactor
	e.ViaHubKM = via1
	if via2 < via1 {
		e.ViaHubKM = via2
	}
	return e
}

// DirectRTTms returns the round-trip latency of the direct connection.
func (e TokyoExample) DirectRTTms() float64 { return RTTms(e.DirectKM) }

// ViaHubRTTms returns the round-trip latency through the better hub.
func (e TokyoExample) ViaHubRTTms() float64 { return RTTms(e.ViaHubKM) }

// Reduction returns the latency reduction factor of going direct.
func (e TokyoExample) Reduction() float64 { return e.ViaHubRTTms() / e.DirectRTTms() }
