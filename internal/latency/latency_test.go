package latency

import (
	"math"
	"testing"

	"iris/internal/fibermap"
	"iris/internal/geo"
	"iris/internal/stats"
)

func TestRTTms(t *testing.T) {
	// 100 km of fiber: 1 ms round trip at 200 km/ms.
	if got := RTTms(100); got != 1 {
		t.Errorf("RTTms(100) = %v, want 1", got)
	}
	// The paper's Tokyo example: 19 km direct ≈ 0.2 ms RTT.
	if got := RTTms(19); math.Abs(got-0.19) > 1e-9 {
		t.Errorf("RTTms(19) = %v, want 0.19", got)
	}
}

func TestInflationGeometry(t *testing.T) {
	a := geo.Point{X: 0, Y: 0}
	b := geo.Point{X: 10, Y: 0}

	t.Run("hub on the segment has no inflation", func(t *testing.T) {
		got, err := Inflation(a, b, []geo.Point{{X: 5, Y: 0}})
		if err != nil || math.Abs(got-1) > 1e-9 {
			t.Errorf("inflation = %v, %v; want 1", got, err)
		}
	})

	t.Run("detour through a distant hub", func(t *testing.T) {
		// Hub equidistant from both DCs at distance 13 (5-12-13 triangles).
		got, err := Inflation(a, b, []geo.Point{{X: 5, Y: 12}})
		if err != nil {
			t.Fatal(err)
		}
		if want := 26.0 / 10.0; math.Abs(got-want) > 1e-9 {
			t.Errorf("inflation = %v, want %v", got, want)
		}
	})

	t.Run("best of two hubs wins", func(t *testing.T) {
		hubs := []geo.Point{{X: 5, Y: 12}, {X: 5, Y: 0}}
		got, err := Inflation(a, b, hubs)
		if err != nil || math.Abs(got-1) > 1e-9 {
			t.Errorf("inflation = %v, %v; want 1 via the close hub", got, err)
		}
	})

	t.Run("errors", func(t *testing.T) {
		if _, err := Inflation(a, b, nil); err == nil {
			t.Error("expected error for no hubs")
		}
		if _, err := Inflation(a, a, []geo.Point{{X: 1}}); err == nil {
			t.Error("expected error for co-located DCs")
		}
	})
}

func TestInflationAtLeastOne(t *testing.T) {
	// Triangle inequality: going via any hub can never be shorter than
	// the direct path.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 7, Y: 3}, {X: -2, Y: 9}, {X: 5, Y: -4}}
	hubs := []geo.Point{{X: 1, Y: 1}, {X: -3, Y: 2}}
	for _, infl := range Inflations(pts, hubs) {
		if infl < 1-1e-9 {
			t.Fatalf("inflation %v below 1", infl)
		}
	}
}

func TestInflationsSkipsColocated(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 5, Y: 5}}
	hubs := []geo.Point{{X: 1, Y: 1}}
	got := Inflations(pts, hubs)
	if len(got) != 2 { // pairs (0,2) and (1,2); (0,1) skipped
		t.Errorf("got %d inflations, want 2", len(got))
	}
}

// TestFig3Shape reproduces the paper's headline latency claim on synthetic
// regions: pooled across regions, a substantial fraction of DC pairs see
// >1× inflation via hubs, and a meaningful tail sees >2×.
func TestFig3Shape(t *testing.T) {
	var pool []float64
	for seed := int64(0); seed < 22; seed++ {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed*7+1, 8
		dcs, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h1, h2 := fibermap.ChooseHubs(m, 6)
		var dcPts []geo.Point
		for _, dc := range dcs {
			dcPts = append(dcPts, m.Nodes[dc].Pos)
		}
		hubs := []geo.Point{m.Nodes[h1].Pos, m.Nodes[h2].Pos}
		pool = append(pool, Inflations(dcPts, hubs)...)
	}
	if len(pool) < 22*20 {
		t.Fatalf("only %d samples pooled", len(pool))
	}
	improved := stats.FractionAbove(pool, 1.001)
	doubled := stats.FractionAbove(pool, 2)
	t.Logf("Fig. 3 shape: %.0f%% of pairs improve, %.0f%% improve >2× (paper: ≥60%%, >20%%)",
		improved*100, doubled*100)
	if improved < 0.6 {
		t.Errorf("only %.0f%% of pairs see any latency benefit; paper reports ≥60%%", improved*100)
	}
	if doubled < 0.10 {
		t.Errorf("only %.0f%% of pairs see >2× benefit; paper reports >20%%", doubled*100)
	}
}
